//! Temporal invariants, checked directly on a captured trace.
//!
//! Every query takes the raw (unordered) record slice, merges it into the
//! happens-before-consistent total order, and returns the records that
//! *violate* the invariant — empty means the trace is clean, and a
//! non-empty result carries the offending records so the caller can print
//! them with their full causal context.
//!
//! Two ordering notions appear below:
//!
//! * **per-node order** — records of one node sorted by `lamport` (each
//!   emit strictly ticks the node clock, so this is exactly program
//!   order at that node);
//! * **causal precedence** — `a` happened-before `b` is *implied* by
//!   `a.lamport < b.lamport` never holding in reverse: Lamport clocks
//!   guarantee `a → b ⇒ L(a) < L(b)`, so any `b` with no candidate `a`
//!   at a smaller stamp provably lacks a causally-prior `a`.

use crate::event::{SspKind, TraceEvent, TraceRecord};
use bmx_common::NodeId;

/// Sort a captured trace into a total order consistent with
/// happens-before: `(lamport, node, seq)`. Because each emit strictly
/// increases the emitting node's clock and delivery merges the sender's
/// piggy-backed stamp, `a → b` implies `L(a) < L(b)`, so every linear
/// extension of the `lamport` sort — ties broken arbitrarily but
/// deterministically — is a valid topological order of the causal DAG.
pub fn merged_order(records: &[TraceRecord]) -> Vec<TraceRecord> {
    let mut out = records.to_vec();
    out.sort_by_key(|r| (r.lamport, r.node.0, r.seq));
    out
}

/// The records of one node, in its program order.
pub fn node_order(records: &[TraceRecord], node: NodeId) -> Vec<TraceRecord> {
    let mut out: Vec<TraceRecord> = records.iter().filter(|r| r.node == node).copied().collect();
    out.sort_by_key(|r| (r.lamport, r.seq));
    out
}

/// Render the merged happens-before timeline, one record per line.
pub fn human_timeline(records: &[TraceRecord]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for rec in merged_order(records) {
        let _ = writeln!(out, "{rec}");
    }
    out
}

/// **Scion-retirement ordering** (the paper's central safety rule): the
/// cleaner may retire scions or entering ownerPtrs only under a covering
/// reachability epoch — so every `ScionRetired`/`OwnerPtrRetired` at a
/// node must be preceded, in that node's program order, by the
/// `ReportApply` of the same `(source, bunch, epoch)` report. Returns the
/// retirement records with no such prior apply.
pub fn scion_retirement_violations(records: &[TraceRecord]) -> Vec<TraceRecord> {
    let mut bad = Vec::new();
    for node in nodes_of(records) {
        let order = node_order(records, node);
        for (i, rec) in order.iter().enumerate() {
            let (source, bunch, epoch) = match rec.event {
                TraceEvent::ScionRetired {
                    source,
                    bunch,
                    epoch,
                    ..
                }
                | TraceEvent::OwnerPtrRetired {
                    source,
                    bunch,
                    epoch,
                    ..
                } => (source, bunch, epoch),
                _ => continue,
            };
            let covered = order[..i].iter().any(|p| {
                matches!(
                    p.event,
                    TraceEvent::ReportApply {
                        source: s,
                        bunch: b,
                        epoch: e,
                    } if s == source && b == bunch && e == epoch
                )
            });
            if !covered {
                bad.push(*rec);
            }
        }
    }
    bad
}

/// **Address-update happens-before**: a mutator access that resolved
/// through forwarding (`requested != resolved`) must be preceded, at that
/// node, by the knowledge that the object moved — either the node
/// relocated it itself (`Relocate`) or a lazy `AddrUpdate` landed there.
/// Each such event contributes one forwarding hop; successive collections
/// chain them, so the check replays the node's learned hops and demands
/// that `requested` reaches `resolved` through hops learned *before* the
/// access. Returns the forwarded accesses with no such path.
pub fn address_update_violations(records: &[TraceRecord]) -> Vec<TraceRecord> {
    let mut bad = Vec::new();
    for node in nodes_of(records) {
        let mut hops: std::collections::BTreeMap<_, _> = std::collections::BTreeMap::new();
        for rec in node_order(records, node) {
            match rec.event {
                TraceEvent::Relocate { from, to, .. } | TraceEvent::AddrUpdate { from, to, .. } => {
                    hops.insert(from, to);
                }
                TraceEvent::MutatorAccess {
                    requested,
                    resolved,
                    ..
                } if requested != resolved => {
                    let mut cur = requested;
                    // Bounded walk: a hop map this size can't need more steps.
                    for _ in 0..=hops.len() {
                        match hops.get(&cur) {
                            Some(&next) => cur = next,
                            None => break,
                        }
                        if cur == resolved {
                            break;
                        }
                    }
                    if cur != resolved {
                        bad.push(rec);
                    }
                }
                _ => {}
            }
        }
    }
    bad
}

/// **Acquire invariants** (paper, Section 5): the three temporal rules
/// that make token acquisition safe against a concurrent collector.
///
/// 1. *Granted before complete*: every `AcquireComplete` at node `n` has
///    a causally-prior `TokenGrant { to: n }` for the same object at some
///    other node (remote completions are only emitted on the grant path).
/// 2. *No update without a relocation*: every `AddrUpdate` has a
///    causally-prior `Relocate` with the same object and addresses — a
///    node can only learn of a move the collector actually performed.
/// 3. *Scion before stub* (intra-bunch SSP): an `IntraStub` half at the
///    new owner is created only after the covering `IntraScion` half
///    exists at the old owner, so the chain is never dangling.
///
/// Causal precedence is checked through the Lamport order (`a → b ⇒
/// L(a) < L(b)`, so requiring a matching event at a strictly smaller —
/// or, same-node, not-later — stamp is sound). Returns every record that
/// breaks one of the three rules.
pub fn acquire_invariant_violations(records: &[TraceRecord]) -> Vec<TraceRecord> {
    let ordered = merged_order(records);
    let mut bad = Vec::new();
    for (i, rec) in ordered.iter().enumerate() {
        let prior = &ordered[..i];
        match rec.event {
            TraceEvent::AcquireComplete { oid, mode } => {
                let granted = prior.iter().any(|p| {
                    p.lamport < rec.lamport
                        && matches!(
                            p.event,
                            TraceEvent::TokenGrant { oid: o, to, mode: m }
                                if o == oid && to == rec.node && m == mode
                        )
                });
                if !granted {
                    bad.push(*rec);
                }
            }
            TraceEvent::AddrUpdate { oid, from, to } => {
                let relocated = prior.iter().any(|p| {
                    (p.node == rec.node || p.lamport < rec.lamport)
                        && matches!(
                            p.event,
                            TraceEvent::Relocate { oid: o, from: f, to: t }
                                if o == oid && f == from && t == to
                        )
                });
                if !relocated {
                    bad.push(*rec);
                }
            }
            TraceEvent::SspCreate {
                kind: SspKind::IntraStub,
                oid: Some(oid),
                ..
            } => {
                let scion_first = prior.iter().any(|p| {
                    p.lamport < rec.lamport
                        && matches!(
                            p.event,
                            TraceEvent::SspCreate {
                                kind: SspKind::IntraScion,
                                oid: Some(o),
                                ..
                            } if o == oid
                        )
                });
                if !scion_first {
                    bad.push(*rec);
                }
            }
            _ => {}
        }
    }
    bad
}

/// **Post-crash epoch monotonicity** (crash-amnesia recovery rule): once a
/// node `X` begins recovery from an amnesia crash (`RecoveryBegin` at `X`),
/// every later scion/ownerPtr retirement justified by one of `X`'s reports
/// must carry an epoch *strictly greater* than the highest epoch any node
/// had applied from `X` for that bunch before the recovery. The rejoin
/// handshake resumes `X`'s per-bunch epoch counters at the surviving
/// cluster-wide maximum, so a retirement under a pre-crash epoch after a
/// restart means a stale (possibly amnesia-forgotten) report was replayed
/// as if fresh — exactly the confusion the idempotent cleaner design is
/// supposed to rule out. Returns the offending retirement records.
///
/// The pass walks the merged happens-before order once: it tracks, per
/// `(source, bunch)`, the maximum epoch seen in any `ReportApply`,
/// `ScionRetired`, or `OwnerPtrRetired`; at each `RecoveryBegin` at `X` it
/// freezes that maximum as `X`'s floor; any subsequent retirement with
/// source `X` at an epoch `<=` the floor is flagged. A second recovery at
/// the same node re-freezes the floor at the then-current maximum.
pub fn post_crash_epoch_violations(records: &[TraceRecord]) -> Vec<TraceRecord> {
    use std::collections::BTreeMap;
    let mut max_epoch: BTreeMap<(NodeId, bmx_common::BunchId), u64> = BTreeMap::new();
    let mut floors: BTreeMap<(NodeId, bmx_common::BunchId), u64> = BTreeMap::new();
    let mut bad = Vec::new();
    for rec in merged_order(records) {
        match rec.event {
            TraceEvent::ReportApply {
                source,
                bunch,
                epoch,
            } => {
                let slot = max_epoch.entry((source, bunch)).or_insert(0);
                *slot = (*slot).max(epoch.0);
            }
            TraceEvent::ScionRetired {
                source,
                bunch,
                epoch,
                ..
            }
            | TraceEvent::OwnerPtrRetired {
                source,
                bunch,
                epoch,
                ..
            } => {
                if let Some(&floor) = floors.get(&(source, bunch)) {
                    if epoch.0 <= floor {
                        bad.push(rec);
                    }
                }
                let slot = max_epoch.entry((source, bunch)).or_insert(0);
                *slot = (*slot).max(epoch.0);
            }
            TraceEvent::RecoveryBegin { .. } => {
                // Freeze this node's floors at the epochs the cluster had
                // already applied from it, for every bunch it ever reported.
                for (&(source, bunch), &m) in max_epoch.iter() {
                    if source == rec.node {
                        floors.insert((source, bunch), m);
                    }
                }
            }
            _ => {}
        }
    }
    bad
}

/// **Metric-alarm happens-before justification**: a watchdog alarm is a
/// claim *about* the trace — "the events up to my witness show a leak" —
/// so every `MetricAlarm` must be causally anchored in the window it
/// accuses. Three rules, violations of any returned:
///
/// 1. *Witnessed*: the alarm cites a `witness_lamport` that actually
///    exists at the alarming node — some non-alarm event of that node
///    carries exactly that stamp. An alarm with `witness_lamport == 0`
///    (or citing a stamp the node never produced) is unjustified: the
///    watchdog observed no evidence, or cites evidence outside the
///    captured window.
/// 2. *After its evidence*: the alarm's own stamp is strictly greater
///    than the witness stamp (`a → b ⇒ L(a) < L(b)`; the alarm must
///    happen-after the newest event it is justified by).
/// 3. *Window sanity*: the condition's start (`since_tick`) does not lie
///    in the alarm's future — `since_tick <= tick`.
pub fn metric_alarm_hb_violations(records: &[TraceRecord]) -> Vec<TraceRecord> {
    let mut bad = Vec::new();
    for node in nodes_of(records) {
        let order = node_order(records, node);
        for rec in &order {
            let TraceEvent::MetricAlarm {
                witness_lamport,
                since_tick,
                ..
            } = rec.event
            else {
                continue;
            };
            let witnessed = witness_lamport != 0
                && order.iter().any(|p| {
                    p.lamport == witness_lamport
                        && !matches!(p.event, TraceEvent::MetricAlarm { .. })
                });
            if !witnessed || witness_lamport >= rec.lamport || since_tick > rec.tick {
                bad.push(*rec);
            }
        }
    }
    bad
}

fn nodes_of(records: &[TraceRecord]) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = records.iter().map(|r| r.node).collect();
    nodes.sort_by_key(|n| n.0);
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessMode, MsgLane, TraceEvent};
    use bmx_common::{Addr, BunchId, Epoch, NodeId, Oid};

    fn r(node: u32, lamport: u64, seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            node: NodeId(node),
            tick: lamport,
            lamport,
            seq,
            event,
        }
    }

    /// Replaying a send/deliver pair through the real recorder, with the
    /// capture arriving out of order, still merges into an order where
    /// the send precedes the delivery.
    #[test]
    fn lamport_merge_orders_send_before_delivery_under_reordering() {
        crate::install_vec();
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        // n1 does some local work first so its raw clock runs ahead.
        for _ in 0..5 {
            crate::emit(n1, TraceEvent::TokenRelease { oid: Oid(1) });
        }
        let sent = crate::emit(
            n0,
            TraceEvent::MsgSend {
                dst: n1,
                seq: 1,
                lane: MsgLane::Dsm,
            },
        );
        crate::observe(n1, sent);
        crate::emit(
            n1,
            TraceEvent::MsgDeliver {
                src: n0,
                seq: 1,
                lane: MsgLane::Dsm,
                sent_lamport: sent,
            },
        );
        let mut captured = crate::take();
        crate::disable();
        captured.reverse(); // adversarial capture order
        let ordered = merged_order(&captured);
        let send_pos = ordered
            .iter()
            .position(|r| matches!(r.event, TraceEvent::MsgSend { .. }))
            .unwrap();
        let deliver_pos = ordered
            .iter()
            .position(|r| matches!(r.event, TraceEvent::MsgDeliver { .. }))
            .unwrap();
        assert!(send_pos < deliver_pos, "send must sort before its delivery");
        // And the order is a permutation of the capture.
        assert_eq!(ordered.len(), captured.len());
    }

    #[test]
    fn scion_retirement_query_catches_uncovered_retire() {
        let apply = TraceEvent::ReportApply {
            source: NodeId(0),
            bunch: BunchId(1),
            epoch: Epoch(3),
        };
        let retire = TraceEvent::ScionRetired {
            source: NodeId(0),
            bunch: BunchId(1),
            epoch: Epoch(3),
            count: 2,
        };
        let good = vec![r(1, 1, 1, apply), r(1, 2, 2, retire)];
        assert!(scion_retirement_violations(&good).is_empty());
        let bad = vec![r(1, 1, 1, retire), r(1, 2, 2, apply)];
        assert_eq!(scion_retirement_violations(&bad).len(), 1);
        let wrong_epoch = vec![
            r(
                1,
                1,
                1,
                TraceEvent::ReportApply {
                    source: NodeId(0),
                    bunch: BunchId(1),
                    epoch: Epoch(2),
                },
            ),
            r(1, 2, 2, retire),
        ];
        assert_eq!(
            scion_retirement_violations(&wrong_epoch).len(),
            1,
            "a stale epoch does not cover the retirement"
        );
    }

    #[test]
    fn address_update_query_requires_prior_move_knowledge() {
        let access = TraceEvent::MutatorAccess {
            requested: Addr(100),
            resolved: Addr(200),
            write: false,
        };
        let update = TraceEvent::AddrUpdate {
            oid: Oid(5),
            from: Addr(100),
            to: Addr(200),
        };
        let good = vec![r(0, 1, 1, update), r(0, 2, 2, access)];
        assert!(address_update_violations(&good).is_empty());
        let bad = vec![r(0, 1, 1, access), r(0, 2, 2, update)];
        assert_eq!(address_update_violations(&bad).len(), 1);
        // An un-forwarded access needs no prior knowledge.
        let plain = vec![r(
            0,
            1,
            1,
            TraceEvent::MutatorAccess {
                requested: Addr(100),
                resolved: Addr(100),
                write: true,
            },
        )];
        assert!(address_update_violations(&plain).is_empty());
        // Two collections chain the hops: 100 -> 200 -> 300.
        let second_hop = TraceEvent::AddrUpdate {
            oid: Oid(5),
            from: Addr(200),
            to: Addr(300),
        };
        let far_access = TraceEvent::MutatorAccess {
            requested: Addr(100),
            resolved: Addr(300),
            write: false,
        };
        let chained = vec![
            r(0, 1, 1, update),
            r(0, 2, 2, second_hop),
            r(0, 3, 3, far_access),
        ];
        assert!(
            address_update_violations(&chained).is_empty(),
            "resolution through a forwarding chain is covered hop by hop"
        );
        let half_chain = vec![r(0, 1, 1, update), r(0, 2, 2, far_access)];
        assert_eq!(
            address_update_violations(&half_chain).len(),
            1,
            "a missing hop breaks the path"
        );
    }

    #[test]
    fn acquire_invariants_catch_grant_and_ssp_order() {
        let grant = TraceEvent::TokenGrant {
            oid: Oid(7),
            to: NodeId(1),
            mode: AccessMode::Write,
        };
        let complete = TraceEvent::AcquireComplete {
            oid: Oid(7),
            mode: AccessMode::Write,
        };
        let good = vec![r(0, 1, 1, grant), r(1, 2, 2, complete)];
        assert!(acquire_invariant_violations(&good).is_empty());
        let ungranted = vec![r(1, 2, 2, complete)];
        assert_eq!(acquire_invariant_violations(&ungranted).len(), 1);

        let scion = TraceEvent::SspCreate {
            kind: SspKind::IntraScion,
            oid: Some(Oid(9)),
            peer: NodeId(1),
        };
        let stub = TraceEvent::SspCreate {
            kind: SspKind::IntraStub,
            oid: Some(Oid(9)),
            peer: NodeId(0),
        };
        let ordered = vec![r(0, 1, 1, scion), r(1, 2, 2, stub)];
        assert!(acquire_invariant_violations(&ordered).is_empty());
        let dangling = vec![r(1, 1, 1, stub), r(0, 2, 2, scion)];
        assert_eq!(acquire_invariant_violations(&dangling).len(), 1);
    }

    #[test]
    fn post_crash_epoch_query_flags_pre_crash_epoch_retirement() {
        let apply = |epoch: u64| TraceEvent::ReportApply {
            source: NodeId(2),
            bunch: BunchId(1),
            epoch: Epoch(epoch),
        };
        let retire = |epoch: u64| TraceEvent::ScionRetired {
            source: NodeId(2),
            bunch: BunchId(1),
            epoch: Epoch(epoch),
            count: 1,
        };
        // Pre-crash: the cluster applied node 2's epoch-3 report. After node
        // 2's amnesia recovery, retirements under its reports must be > 3.
        let good = vec![
            r(0, 1, 1, apply(3)),
            r(0, 2, 2, retire(3)),
            r(2, 3, 3, TraceEvent::RecoveryBegin { epoch: 1 }),
            r(0, 4, 4, apply(4)),
            r(0, 5, 5, retire(4)),
        ];
        assert!(post_crash_epoch_violations(&good).is_empty());
        let bad = vec![
            r(0, 1, 1, apply(3)),
            r(2, 2, 2, TraceEvent::RecoveryBegin { epoch: 1 }),
            r(0, 3, 3, retire(3)),
        ];
        assert_eq!(
            post_crash_epoch_violations(&bad).len(),
            1,
            "a retirement at the pre-crash epoch after RecoveryBegin is stale"
        );
        // Another source's retirements are unaffected by node 2's crash.
        let other = vec![
            r(
                0,
                1,
                1,
                TraceEvent::ReportApply {
                    source: NodeId(1),
                    bunch: BunchId(1),
                    epoch: Epoch(3),
                },
            ),
            r(2, 2, 2, TraceEvent::RecoveryBegin { epoch: 1 }),
            r(
                0,
                3,
                3,
                TraceEvent::ScionRetired {
                    source: NodeId(1),
                    bunch: BunchId(1),
                    epoch: Epoch(3),
                    count: 1,
                },
            ),
        ];
        assert!(post_crash_epoch_violations(&other).is_empty());
    }

    #[test]
    fn metric_alarm_query_demands_a_causal_witness() {
        use crate::event::AlarmKind;
        let alarm = |witness: u64, since: u64| TraceEvent::MetricAlarm {
            kind: AlarmKind::FromSpaceLeak,
            value: 4096,
            since_tick: since,
            witness_lamport: witness,
        };
        let evidence = TraceEvent::ReportPublish {
            bunch: BunchId(1),
            epoch: Epoch(2),
        };
        // Justified: the alarm cites the publish (L=3) and fires after it.
        let good = vec![r(0, 3, 1, evidence), r(0, 7, 2, alarm(3, 1))];
        assert!(metric_alarm_hb_violations(&good).is_empty());
        // No event at the cited stamp: unjustified.
        let unwitnessed = vec![r(0, 3, 1, evidence), r(0, 7, 2, alarm(4, 1))];
        assert_eq!(metric_alarm_hb_violations(&unwitnessed).len(), 1);
        // A zero witness means the watchdog saw nothing at all.
        let blind = vec![r(0, 7, 1, alarm(0, 1))];
        assert_eq!(metric_alarm_hb_violations(&blind).len(), 1);
        // The alarm may not be stamped at-or-before its own evidence.
        let premature = vec![r(0, 3, 1, evidence), r(0, 3, 2, alarm(3, 1))];
        assert_eq!(metric_alarm_hb_violations(&premature).len(), 1);
        // Another alarm cannot serve as the witness.
        let circular = vec![r(0, 3, 1, alarm(0, 1)), r(0, 7, 2, alarm(3, 1))];
        assert_eq!(
            metric_alarm_hb_violations(&circular).len(),
            2,
            "the blind alarm and the one citing it are both flagged"
        );
        // since_tick in the future of the alarm's own tick is nonsense.
        let future = vec![r(0, 3, 1, evidence), r(0, 7, 2, alarm(3, 99))];
        assert_eq!(metric_alarm_hb_violations(&future).len(), 1);
    }

    #[test]
    fn human_timeline_is_one_line_per_record() {
        let recs = vec![
            r(0, 1, 1, TraceEvent::TokenRelease { oid: Oid(1) }),
            r(1, 2, 2, TraceEvent::TokenRelease { oid: Oid(2) }),
        ];
        let text = human_timeline(&recs);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("TokenRelease"));
    }
}
