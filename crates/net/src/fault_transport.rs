//! Seeded fault injection for the *parallel* message plane.
//!
//! The deterministic simulator injects faults inside [`crate::Network`],
//! where the discrete-event clock makes every decision replayable. The
//! parallel runtime has no such clock — threads interleave however the
//! hardware likes — so its fault plane must get determinism from
//! somewhere else. [`FaultyTransport`] wraps a [`ChannelTransport`] and
//! derives every fault *decision* from per-link send counters:
//!
//! * Each directed link owns a [`SplitMix64`] stream seeded from one
//!   cluster seed plus the link identity. Every send draws drop,
//!   duplicate, and delay verdicts **in a fixed order**, so the fate of
//!   the k-th envelope on link `(s, d)` is a pure function of
//!   `(seed, s, d, k, class)` — bit-stable across runs even though
//!   *which* payload is the k-th send is schedule-dependent.
//! * Time for healing partitions is a **pulse counter** advanced by the
//!   runtime's supervisor ([`FaultyTransport::pulse`]), not wall clock:
//!   a partition severs links for a pulse interval and heals when the
//!   counter passes `until_pulse`, at which point held traffic flushes
//!   in per-link FIFO order.
//!
//! The class reliability model matches the simulator exactly (the
//! paper's Section 8 loss model): the DSM class is never dropped — a
//! partition *holds* it and a drop verdict is ignored for it — only
//! idempotent classes (`ScionMessage`, `StubTable`) may be duplicated,
//! and loss-tolerant classes may be dropped outright. Per-link FIFO is
//! preserved under delay: once a link holds anything back, every later
//! send on that link queues behind it.
//!
//! Accounting keeps the conservation law auditable under faults:
//! [`Transport::sent`] counts every copy this wrapper accepted
//! (duplicates included), [`Transport::dropped`] counts injected drops
//! plus downstream discards, and [`Transport::in_flight`] includes held
//! envelopes — so `in_flight() == 0` remains a sound quiescence barrier
//! and `delivered + dropped == sent` must hold at shutdown.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use bmx_common::{NodeId, SplitMix64};

use crate::network::{Envelope, MsgClass};
use crate::transport::{ChannelTransport, Transport};

/// Per-link fault probabilities for the parallel plane. All default to
/// zero (a quiet link).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ParallelLinkFault {
    /// Probability a loss-tolerant envelope is dropped. Never applied to
    /// the DSM class (the design requires it reliable).
    pub drop: f64,
    /// Probability an idempotent envelope (`ScionMessage`, `StubTable`)
    /// is delivered twice. Non-idempotent classes are never duplicated.
    pub duplicate: f64,
    /// Probability an envelope (any class) is held until the next pulse.
    pub delay: f64,
}

/// A timed partition: links between side `a` and side `b` are severed
/// for pulses in `[from_pulse, until_pulse)` and heal after.
#[derive(Clone, Debug)]
pub struct ParallelPartition {
    /// One side of the cut.
    pub a: Vec<NodeId>,
    /// The other side.
    pub b: Vec<NodeId>,
    /// First pulse at which the cut is active.
    pub from_pulse: u64,
    /// First pulse at which the cut is healed again.
    pub until_pulse: u64,
}

impl ParallelPartition {
    fn severs(&self, src: NodeId, dst: NodeId, pulse: u64) -> bool {
        if pulse < self.from_pulse || pulse >= self.until_pulse {
            return false;
        }
        (self.a.contains(&src) && self.b.contains(&dst))
            || (self.b.contains(&src) && self.a.contains(&dst))
    }
}

/// The whole fault plan for a parallel run: a default per-link fault,
/// optional per-link overrides, and timed healing partitions.
#[derive(Clone, Debug, Default)]
pub struct ParallelFaultPlan {
    /// Fault probabilities applied to links without an override.
    pub default_link: ParallelLinkFault,
    /// Per-link overrides, keyed `(src, dst)`.
    pub links: Vec<((NodeId, NodeId), ParallelLinkFault)>,
    /// Timed partitions (pulse-counted, see [`FaultyTransport::pulse`]).
    pub partitions: Vec<ParallelPartition>,
}

impl ParallelFaultPlan {
    /// Applies `fault` to every link without an explicit override.
    pub fn all_links(mut self, fault: ParallelLinkFault) -> Self {
        self.default_link = fault;
        self
    }

    /// Overrides the fault on one directed link.
    pub fn link(mut self, src: NodeId, dst: NodeId, fault: ParallelLinkFault) -> Self {
        self.links.push(((src, dst), fault));
        self
    }

    /// Adds a timed partition between `a` and `b`.
    pub fn partition(
        mut self,
        a: Vec<NodeId>,
        b: Vec<NodeId>,
        from_pulse: u64,
        until_pulse: u64,
    ) -> Self {
        self.partitions.push(ParallelPartition {
            a,
            b,
            from_pulse,
            until_pulse,
        });
        self
    }

    fn fault_for(&self, src: NodeId, dst: NodeId) -> ParallelLinkFault {
        self.links
            .iter()
            .rev()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }
}

/// Injected-fault accounting for a run (monotone counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelFaultStats {
    /// Envelopes dropped by a drop verdict or a severed link.
    pub injected_drops: u64,
    /// Duplicate copies injected.
    pub duplicates: u64,
    /// Envelopes held back (delay verdict, severed link, or FIFO queueing
    /// behind either).
    pub delayed: u64,
    /// Envelopes currently held back (a gauge: returns to zero once every
    /// partition healed and a pulse flushed the queues).
    pub held_now: u64,
}

struct LinkState<M> {
    rng: SplitMix64,
    held: VecDeque<Envelope<M>>,
}

fn class_idx(class: MsgClass) -> usize {
    match class {
        MsgClass::Dsm => 0,
        MsgClass::ScionMessage => 1,
        MsgClass::StubTable => 2,
        MsgClass::GcBackground => 3,
    }
}

/// A fault-injecting wrapper over [`ChannelTransport`]. See the module
/// docs for the determinism contract.
pub struct FaultyTransport<M> {
    inner: ChannelTransport<M>,
    plan: ParallelFaultPlan,
    nodes: usize,
    /// Flattened `src * nodes + dst` per-link fault state.
    links: Vec<Mutex<LinkState<M>>>,
    /// The healing clock: advanced by [`FaultyTransport::pulse`].
    pulse: AtomicU64,
    /// Envelopes currently held back across all links. Counted into
    /// [`Transport::in_flight`] so quiescence waits for them.
    held: AtomicU64,
    /// Set by [`FaultyTransport::heal_all`]: partitions stop severing.
    healed: AtomicBool,
    /// Envelopes this wrapper accepted, per class (duplicates counted).
    sent: [AtomicU64; 4],
    /// Envelopes dropped by fault injection, per class.
    fault_dropped: [AtomicU64; 4],
    drops: AtomicU64,
    dups: AtomicU64,
    delays: AtomicU64,
}

impl<M: Send + Clone> FaultyTransport<M> {
    /// Wraps a fresh full mesh for `n` nodes under `plan`, with every
    /// fault decision derived from `seed`.
    pub fn new(n: usize, plan: ParallelFaultPlan, seed: u64) -> Self {
        let links = (0..n * n)
            .map(|i| {
                let (src, dst) = (i / n, i % n);
                let link_seed = seed
                    ^ ((src as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    ^ ((dst as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
                Mutex::new(LinkState {
                    rng: SplitMix64::new(link_seed),
                    held: VecDeque::new(),
                })
            })
            .collect();
        FaultyTransport {
            inner: ChannelTransport::new(n),
            plan,
            nodes: n,
            links,
            pulse: AtomicU64::new(0),
            held: AtomicU64::new(0),
            healed: AtomicBool::new(false),
            sent: Default::default(),
            fault_dropped: Default::default(),
            drops: AtomicU64::new(0),
            dups: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        }
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The current pulse (the healing clock's reading).
    pub fn now_pulse(&self) -> u64 {
        self.pulse.load(Ordering::SeqCst)
    }

    /// Advances the healing clock one pulse and flushes held envelopes on
    /// every link that is not severed at the new pulse. Returns the new
    /// pulse. The runtime's supervisor calls this periodically; tests may
    /// call it directly to drive partitions deterministically.
    pub fn pulse(&self) -> u64 {
        let p = self.pulse.fetch_add(1, Ordering::SeqCst) + 1;
        self.flush(p);
        p
    }

    /// Disables every partition permanently and flushes all held traffic.
    /// Shutdown calls this so `Drain` cannot hang on a never-healing cut.
    pub fn heal_all(&self) {
        self.healed.store(true, Ordering::SeqCst);
        self.flush(u64::MAX);
    }

    /// Injected-fault accounting so far.
    pub fn stats(&self) -> ParallelFaultStats {
        ParallelFaultStats {
            injected_drops: self.drops.load(Ordering::Relaxed),
            duplicates: self.dups.load(Ordering::Relaxed),
            delayed: self.delays.load(Ordering::Relaxed),
            held_now: self.held.load(Ordering::SeqCst),
        }
    }

    fn severed(&self, src: NodeId, dst: NodeId, pulse: u64) -> bool {
        if self.healed.load(Ordering::SeqCst) {
            return false;
        }
        self.plan
            .partitions
            .iter()
            .any(|p| p.severs(src, dst, pulse))
    }

    fn flush(&self, pulse: u64) {
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                let (s, d) = (NodeId(src as u32), NodeId(dst as u32));
                if self.severed(s, d, pulse) {
                    continue;
                }
                let mut st = self.links[src * self.nodes + dst].lock().expect("link");
                while let Some(env) = st.held.pop_front() {
                    // Forward before decrementing `held`: in_flight must
                    // never momentarily read zero while a message exists.
                    self.inner.send_env(env);
                    self.held.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    fn hold(&self, st: &mut LinkState<M>, env: Envelope<M>) {
        self.held.fetch_add(1, Ordering::SeqCst);
        self.delays.fetch_add(1, Ordering::Relaxed);
        st.held.push_back(env);
    }
}

impl<M: Send + Clone> Transport<M> for FaultyTransport<M> {
    fn send_env(&self, env: Envelope<M>) {
        let (src, dst) = (env.src, env.dst);
        let li = src.0 as usize * self.nodes + dst.0 as usize;
        let mut st = self.links[li].lock().expect("link");
        let fault = self.plan.fault_for(src, dst);
        // The three verdicts are always drawn, in this order, whatever
        // the class: the stream position depends only on the send count.
        let drop_verdict = st.rng.chance(fault.drop);
        let dup_verdict = st.rng.chance(fault.duplicate);
        let delay_verdict = st.rng.chance(fault.delay);
        let severed = self.severed(src, dst, self.pulse.load(Ordering::SeqCst));

        self.sent[class_idx(env.class)].fetch_add(1, Ordering::Relaxed);
        if !env.class.requires_reliability() && (drop_verdict || severed) {
            // Loss-tolerant traffic: a drop verdict or a severed link
            // discards it whole. The collector's design absorbs this.
            self.fault_dropped[class_idx(env.class)].fetch_add(1, Ordering::Relaxed);
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let duplicate = dup_verdict && env.class.is_idempotent();
        if duplicate {
            self.sent[class_idx(env.class)].fetch_add(1, Ordering::Relaxed);
            self.dups.fetch_add(1, Ordering::Relaxed);
        }
        // FIFO under delay: once anything is held on this link, every
        // later send queues behind it or per-link order would break.
        // After `heal_all` nothing holds anymore (the verdict streams
        // keep advancing for determinism, but a drained shutdown must
        // not strand late traffic behind a delay that nobody will pulse).
        let healed = self.healed.load(Ordering::SeqCst);
        if healed {
            // Drain anything a racing `heal_all` has not flushed yet
            // before forwarding, so per-link FIFO survives the heal.
            while let Some(held_env) = st.held.pop_front() {
                self.inner.send_env(held_env);
                self.held.fetch_sub(1, Ordering::SeqCst);
            }
        }
        if !healed && (severed || delay_verdict || !st.held.is_empty()) {
            if duplicate {
                self.hold(&mut st, env.clone());
            }
            self.hold(&mut st, env);
            return;
        }
        self.inner.send_env(env.clone());
        if duplicate {
            self.inner.send_env(env);
        }
    }

    fn try_recv(&self, dst: NodeId) -> Option<Envelope<M>> {
        self.inner.try_recv(dst)
    }

    fn ack_delivered(&self) {
        self.inner.ack_delivered();
    }

    fn in_flight(&self) -> u64 {
        self.inner.in_flight() + self.held.load(Ordering::SeqCst)
    }

    fn sent(&self, class: MsgClass) -> u64 {
        self.sent[class_idx(class)].load(Ordering::Relaxed)
    }

    fn dropped(&self, class: MsgClass) -> u64 {
        self.fault_dropped[class_idx(class)].load(Ordering::Relaxed) + self.inner.dropped(class)
    }

    fn note_dropped(&self, class: MsgClass) {
        self.inner.note_dropped(class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx_common::MsgSeq;

    fn env(src: u32, dst: u32, seq: u64, class: MsgClass, v: u64) -> Envelope<u64> {
        Envelope {
            src: NodeId(src),
            dst: NodeId(dst),
            seq: MsgSeq(seq),
            class,
            lamport: 0,
            span: 0,
            payload: v,
        }
    }

    fn drain(t: &FaultyTransport<u64>, dst: u32) -> Vec<u64> {
        let mut got = Vec::new();
        while let Some(e) = t.try_recv(NodeId(dst)) {
            got.push(e.payload);
            t.ack_delivered();
        }
        got
    }

    /// Records the per-send verdict sequence a link produces under a
    /// plan; used to pin determinism across transports.
    fn fate_signature(seed: u64, sends: u64) -> Vec<(bool, u64)> {
        let plan = ParallelFaultPlan::default().all_links(ParallelLinkFault {
            drop: 0.3,
            duplicate: 0.3,
            delay: 0.0,
        });
        let t: FaultyTransport<u64> = FaultyTransport::new(2, plan, seed);
        let mut out = Vec::new();
        for i in 0..sends {
            let before = t.stats();
            t.send_env(env(0, 1, i + 1, MsgClass::StubTable, i));
            let after = t.stats();
            out.push((
                after.injected_drops > before.injected_drops,
                after.duplicates - before.duplicates,
            ));
        }
        out
    }

    #[test]
    fn fault_decisions_are_a_function_of_seed_and_send_count() {
        let a = fate_signature(0xFEED_0001, 200);
        let b = fate_signature(0xFEED_0001, 200);
        let c = fate_signature(0xFEED_0002, 200);
        assert_eq!(a, b, "same seed, same fates");
        assert_ne!(a, c, "different seed, different fates");
        assert!(a.iter().any(|&(d, _)| d), "drops occurred");
        assert!(a.iter().any(|&(_, d)| d > 0), "duplicates occurred");
    }

    #[test]
    fn dsm_class_is_never_dropped_or_duplicated() {
        let plan = ParallelFaultPlan::default().all_links(ParallelLinkFault {
            drop: 1.0,
            duplicate: 1.0,
            delay: 0.0,
        });
        let t: FaultyTransport<u64> = FaultyTransport::new(2, plan, 7);
        for i in 0..50 {
            t.send_env(env(0, 1, i + 1, MsgClass::Dsm, i));
        }
        assert_eq!(drain(&t, 1), (0..50).collect::<Vec<_>>());
        assert_eq!(t.dropped(MsgClass::Dsm), 0);
        assert_eq!(t.sent(MsgClass::Dsm), 50, "no duplicate copies");
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn loss_tolerant_classes_may_drop_but_gcbackground_never_duplicates() {
        let plan = ParallelFaultPlan::default().all_links(ParallelLinkFault {
            drop: 0.0,
            duplicate: 1.0,
            delay: 0.0,
        });
        let t: FaultyTransport<u64> = FaultyTransport::new(2, plan, 7);
        t.send_env(env(0, 1, 1, MsgClass::GcBackground, 1));
        t.send_env(env(0, 1, 2, MsgClass::StubTable, 2));
        assert_eq!(drain(&t, 1), vec![1, 2, 2], "only the stub table doubled");
        assert_eq!(t.sent(MsgClass::StubTable), 2, "the copy is accounted");
        assert_eq!(t.sent(MsgClass::GcBackground), 1);
    }

    #[test]
    fn delay_holds_until_the_next_pulse_and_preserves_link_fifo() {
        let plan = ParallelFaultPlan::default().all_links(ParallelLinkFault {
            drop: 0.0,
            duplicate: 0.0,
            delay: 1.0,
        });
        let t: FaultyTransport<u64> = FaultyTransport::new(2, plan, 11);
        for i in 0..10 {
            t.send_env(env(0, 1, i + 1, MsgClass::Dsm, i));
        }
        assert_eq!(t.try_recv(NodeId(1)).map(|e| e.payload), None);
        assert_eq!(t.in_flight(), 10, "held envelopes are still in flight");
        t.pulse();
        assert_eq!(drain(&t, 1), (0..10).collect::<Vec<_>>(), "FIFO intact");
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn partitions_hold_reliable_traffic_and_heal_on_schedule() {
        let plan = ParallelFaultPlan::default().partition(vec![NodeId(0)], vec![NodeId(1)], 0, 3);
        let t: FaultyTransport<u64> = FaultyTransport::new(2, plan, 3);
        t.send_env(env(0, 1, 1, MsgClass::Dsm, 42));
        t.send_env(env(0, 1, 2, MsgClass::StubTable, 43)); // severed: lost
        assert_eq!(t.try_recv(NodeId(1)).map(|e| e.payload), None);
        assert!(t.in_flight() > 0);
        t.pulse(); // 1
        t.pulse(); // 2
        assert_eq!(t.try_recv(NodeId(1)).map(|e| e.payload), None);
        t.pulse(); // 3: healed
        assert_eq!(drain(&t, 1), vec![42], "DSM survived the cut");
        assert_eq!(t.dropped(MsgClass::StubTable), 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn heal_all_flushes_everything_for_shutdown() {
        let plan =
            ParallelFaultPlan::default().partition(vec![NodeId(0)], vec![NodeId(1)], 0, u64::MAX);
        let t: FaultyTransport<u64> = FaultyTransport::new(2, plan, 5);
        t.send_env(env(0, 1, 1, MsgClass::Dsm, 9));
        assert_eq!(t.try_recv(NodeId(1)).map(|e| e.payload), None);
        t.heal_all();
        assert_eq!(drain(&t, 1), vec![9]);
        assert_eq!(t.stats().held_now, 0);
    }

    #[test]
    fn conservation_holds_under_heavy_faults() {
        let plan = ParallelFaultPlan::default().all_links(ParallelLinkFault {
            drop: 0.4,
            duplicate: 0.4,
            delay: 0.4,
        });
        let t: FaultyTransport<u64> = FaultyTransport::new(3, plan, 0xC0FFEE);
        let classes = [
            MsgClass::Dsm,
            MsgClass::ScionMessage,
            MsgClass::StubTable,
            MsgClass::GcBackground,
        ];
        for i in 0..400u64 {
            let class = classes[(i % 4) as usize];
            t.send_env(env((i % 3) as u32, ((i + 1) % 3) as u32, i, class, i));
        }
        t.heal_all();
        let mut delivered = 0u64;
        for d in 0..3 {
            delivered += drain(&t, d).len() as u64;
        }
        assert_eq!(delivered + t.dropped_total(), t.sent_total());
        assert_eq!(t.in_flight(), 0);
    }
}
