//! Chaos-grade fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes every fault the network will inject over a run:
//! per-link loss/duplication/latency-jitter, timed partitions that heal, and
//! node crash/restart events. All randomness is drawn from the network's one
//! seeded [`bmx_common::SplitMix64`] stream, so a chaos run is replayable from
//! a single `u64` seed: same seed, same plan, same traffic ⇒ bit-identical
//! fault schedule and counters.
//!
//! Fault semantics follow the paper's transport assumptions (Section 4.4):
//!
//! * **Loss and duplication apply only to loss-tolerant classes.**
//!   [`MsgClass::Dsm`] traffic is assumed reliable by the consistency
//!   protocol, so link faults never discard it. Duplication is further
//!   restricted to the idempotent classes ([`MsgClass::is_idempotent`]) —
//!   reachability tables are idempotent by the epoch check and
//!   scion-messages by creation dedup, while the from-space reuse handshake
//!   ([`MsgClass::GcBackground`]) counts acks and must not see duplicates.
//! * **FIFO survives jitter.** Per-link latency jitter delays a message but
//!   never reorders a channel: delivery times are clamped monotonically
//!   against the channel's previously scheduled tail.
//! * **Partitions and crashes hold reliable traffic and drop lossy
//!   traffic.** A severed or crashed endpoint buffers `Dsm` messages until
//!   the partition heals / the node restarts (modelling the reliable
//!   transport's retransmission), while loss-tolerant GC traffic is simply
//!   discarded — exactly the failure the cleaner's resend path must absorb.

use std::collections::BTreeMap;
use std::fmt;

use bmx_common::NodeId;

use crate::network::MsgClass;

/// A typed rejection of an invalid fault/network configuration.
///
/// The `Display` messages intentionally contain the phrases
/// "assumed reliable" and "probability out of range" so panics routed
/// through these errors keep the wording the design documents (and the
/// original `assert!`s) used.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultConfigError {
    /// A drop rate was configured for a class the protocol requires to be
    /// delivered reliably.
    ReliableClassDrop {
        /// The offending class.
        class: MsgClass,
    },
    /// A probability parameter fell outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which probability (e.g. `"drop"`, `"duplicate"`).
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A partition window or crash window is empty or inverted.
    EmptyWindow {
        /// Window start tick.
        start: u64,
        /// Window end tick (exclusive).
        end: u64,
    },
    /// A partition side is empty, so the partition severs nothing.
    EmptyPartitionSide,
    /// A node appears on both sides of one partition.
    NodeOnBothSides {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::ReliableClassDrop { class } => {
                write!(f, "{class:?} is assumed reliable by the DSM protocol")
            }
            FaultConfigError::ProbabilityOutOfRange { what, value } => {
                write!(f, "{what} probability out of range: {value}")
            }
            FaultConfigError::EmptyWindow { start, end } => {
                write!(f, "empty fault window [{start}, {end})")
            }
            FaultConfigError::EmptyPartitionSide => {
                write!(f, "partition with an empty side severs nothing")
            }
            FaultConfigError::NodeOnBothSides { node } => {
                write!(f, "{node:?} appears on both sides of a partition")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl MsgClass {
    /// Whether the receiving handlers for this class are idempotent, making
    /// duplication injection safe: reachability tables are deduplicated by
    /// the cleaner's epoch check, scion/stub installs by identity.
    pub fn is_idempotent(self) -> bool {
        matches!(self, MsgClass::ScionMessage | MsgClass::StubTable)
    }
}

/// Fault parameters of one directed link.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Probability of discarding a loss-tolerant message.
    pub drop: f64,
    /// Probability of delivering an idempotent-class message twice.
    pub duplicate: f64,
    /// Maximum extra delivery latency in ticks, drawn uniformly from
    /// `0..=jitter`. FIFO is preserved by monotone clamping per channel.
    pub jitter: u64,
}

impl LinkFault {
    /// A link that only drops.
    pub fn dropping(p: f64) -> Self {
        LinkFault {
            drop: p,
            ..Default::default()
        }
    }

    /// Validates the probabilities.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (what, value) in [("drop", self.drop), ("duplicate", self.duplicate)] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultConfigError::ProbabilityOutOfRange { what, value });
            }
        }
        Ok(())
    }

    fn is_noop(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.jitter == 0
    }
}

/// A timed two-sided network partition. Traffic between a node in `a` and a
/// node in `b` is severed during `[start, end)` ticks; links within a side
/// are unaffected. Partitions heal: at tick `end` held reliable traffic
/// flows again.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// One side of the cut.
    pub a: Vec<NodeId>,
    /// The other side.
    pub b: Vec<NodeId>,
    /// First tick the cut is in force.
    pub start: u64,
    /// First tick after healing (exclusive end).
    pub end: u64,
}

impl Partition {
    /// Whether this partition severs the directed link `src -> dst` at `t`.
    pub fn severs(&self, src: NodeId, dst: NodeId, t: u64) -> bool {
        if !(self.start..self.end).contains(&t) {
            return false;
        }
        (self.a.contains(&src) && self.b.contains(&dst))
            || (self.b.contains(&src) && self.a.contains(&dst))
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        if self.start >= self.end {
            return Err(FaultConfigError::EmptyWindow {
                start: self.start,
                end: self.end,
            });
        }
        if self.a.is_empty() || self.b.is_empty() {
            return Err(FaultConfigError::EmptyPartitionSide);
        }
        if let Some(&node) = self.a.iter().find(|n| self.b.contains(n)) {
            return Err(FaultConfigError::NodeOnBothSides { node });
        }
        Ok(())
    }
}

/// A node crash at tick `at` followed by a restart at tick `restart_at`.
///
/// In the default (fail-buffered) mode the node neither sends nor receives
/// while crashed: lossy traffic to or from it is discarded, reliable traffic
/// addressed to it is held and delivered after the restart, and the node
/// keeps its volatile state — modelling a transient stall behind a reliable
/// transport.
///
/// With [`CrashEvent::amnesia`] set the crash is a real power failure: the
/// node loses every byte of volatile state, so there is nothing for a
/// reliable transport to retransmit *to* and no send buffer to drain *from*.
/// All in-flight traffic touching the node — reliable classes included — is
/// dropped at crash time, and traffic addressed to or from it during the
/// outage is dropped rather than held. The layer above is expected to wipe
/// the node's state on [`FaultEvent::NodeCrashed`] and run a recovery
/// pipeline on [`FaultEvent::NodeRestarted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing node.
    pub node: NodeId,
    /// Crash tick.
    pub at: u64,
    /// Restart tick (exclusive end of the outage).
    pub restart_at: u64,
    /// Whether the crash discards volatile state and in-flight reliable
    /// traffic (power failure) instead of buffering (transient stall).
    pub amnesia: bool,
}

impl CrashEvent {
    /// Whether `node` is down at `t` under this event.
    pub fn down(&self, node: NodeId, t: u64) -> bool {
        self.node == node && (self.at..self.restart_at).contains(&t)
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        if self.at >= self.restart_at {
            return Err(FaultConfigError::EmptyWindow {
                start: self.at,
                end: self.restart_at,
            });
        }
        Ok(())
    }
}

/// The complete fault schedule for one chaos run.
///
/// Built with the fluent helpers, validated once (by
/// [`FaultPlan::validate`] or at network construction), then interpreted
/// deterministically against the network's seeded RNG.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Fault applied to every link not listed in `links`.
    pub default_link: LinkFault,
    /// Per-directed-link overrides.
    pub links: BTreeMap<(NodeId, NodeId), LinkFault>,
    /// Timed partitions.
    pub partitions: Vec<Partition>,
    /// Crash/restart events.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all (fast path check).
    pub fn is_quiet(&self) -> bool {
        self.default_link.is_noop()
            && self.links.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// Sets the fault applied to every link without an override.
    pub fn all_links(mut self, fault: LinkFault) -> Self {
        self.default_link = fault;
        self
    }

    /// Overrides the fault of the directed link `src -> dst`.
    pub fn link(mut self, src: NodeId, dst: NodeId, fault: LinkFault) -> Self {
        self.links.insert((src, dst), fault);
        self
    }

    /// Adds a timed partition separating `a` from `b` during `[start, end)`.
    pub fn partition(mut self, a: Vec<NodeId>, b: Vec<NodeId>, start: u64, end: u64) -> Self {
        self.partitions.push(Partition { a, b, start, end });
        self
    }

    /// Adds a fail-buffered crash of `node` during `[at, restart_at)`.
    pub fn crash(mut self, node: NodeId, at: u64, restart_at: u64) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_at,
            amnesia: false,
        });
        self
    }

    /// Adds an amnesia crash of `node` during `[at, restart_at)`: volatile
    /// state is lost and in-flight reliable traffic is dropped, not held.
    pub fn crash_amnesia(mut self, node: NodeId, at: u64, restart_at: u64) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_at,
            amnesia: true,
        });
        self
    }

    /// Validates every component of the plan.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        self.default_link.validate()?;
        for fault in self.links.values() {
            fault.validate()?;
        }
        for p in &self.partitions {
            p.validate()?;
        }
        for c in &self.crashes {
            c.validate()?;
        }
        Ok(())
    }

    /// The fault in force on the directed link `src -> dst`.
    pub fn link_fault(&self, src: NodeId, dst: NodeId) -> LinkFault {
        self.links
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// If `src -> dst` is severed by a partition at `t`, the earliest tick
    /// the link is whole again (the max `end` over the active partitions).
    pub fn severed_until(&self, src: NodeId, dst: NodeId, t: u64) -> Option<u64> {
        self.partitions
            .iter()
            .filter(|p| p.severs(src, dst, t))
            .map(|p| p.end)
            .max()
    }

    /// If `node` is crashed at `t`, the tick it restarts (max over
    /// overlapping crash events).
    pub fn crashed_until(&self, node: NodeId, t: u64) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|c| c.down(node, t))
            .map(|c| c.restart_at)
            .max()
    }

    /// Whether any crash event covering `node` at `t` is an amnesia crash.
    /// Amnesia dominates: if a buffered and an amnesia outage overlap, the
    /// volatile state is gone either way.
    pub fn amnesia_at(&self, node: NodeId, t: u64) -> bool {
        self.crashes.iter().any(|c| c.amnesia && c.down(node, t))
    }
}

/// Counters for every fault the network injected. All deterministic under a
/// fixed seed, so two runs of the same plan can be compared field-for-field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Loss-tolerant messages discarded by per-link drop faults.
    pub link_dropped: u64,
    /// Extra copies enqueued by duplication faults.
    pub duplicates_injected: u64,
    /// Loss-tolerant messages discarded because a partition severed the link.
    pub partition_dropped: u64,
    /// Reliable messages held for delivery after a partition healed.
    pub partition_held: u64,
    /// Partitions that reached their heal tick.
    pub partitions_healed: u64,
    /// Messages discarded because an endpoint was crashed (lossy classes),
    /// plus lossy in-flight messages purged at crash time.
    pub crash_dropped: u64,
    /// Reliable messages held for delivery after a node restart.
    pub crash_held: u64,
    /// Reliable messages dropped — not held — because the crashed endpoint
    /// was in an amnesia outage (in-flight purges included).
    pub amnesia_dropped: u64,
    /// Nodes that came back up.
    pub restarts: u64,
}

/// A fault transition observed by [`crate::Network::tick`], reported so the
/// layer above (the cluster) can account per-node recovery statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A partition reached its heal tick; `members` is both sides.
    PartitionHealed {
        /// Every node that was on either side of the cut.
        members: Vec<NodeId>,
    },
    /// A node went down.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Whether the crash discards volatile state (the layer above must
        /// wipe the node) instead of merely stalling it.
        amnesia: bool,
    },
    /// A node came back up; held reliable traffic is now deliverable.
    NodeRestarted {
        /// The restarted node.
        node: NodeId,
        /// Whether the outage was an amnesia crash — the node restarts
        /// empty and must run the recovery pipeline before serving.
        amnesia: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn plan_builder_round_trip() {
        let plan = FaultPlan::none()
            .all_links(LinkFault {
                drop: 0.1,
                duplicate: 0.0,
                jitter: 2,
            })
            .link(n(0), n(1), LinkFault::dropping(0.5))
            .partition(vec![n(0)], vec![n(1), n(2)], 10, 20)
            .crash(n(2), 5, 8);
        assert!(plan.validate().is_ok());
        assert!(!plan.is_quiet());
        assert_eq!(plan.link_fault(n(0), n(1)).drop, 0.5);
        assert_eq!(
            plan.link_fault(n(1), n(0)).drop,
            0.1,
            "override is directed"
        );
        assert_eq!(plan.severed_until(n(0), n(2), 10), Some(20));
        assert_eq!(
            plan.severed_until(n(0), n(2), 20),
            None,
            "heal tick is exclusive"
        );
        assert_eq!(
            plan.severed_until(n(1), n(2), 15),
            None,
            "same side unaffected"
        );
        assert_eq!(plan.crashed_until(n(2), 5), Some(8));
        assert_eq!(plan.crashed_until(n(2), 8), None);
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let plan = FaultPlan::none().all_links(LinkFault::dropping(1.5));
        let err = plan.validate().unwrap_err();
        assert!(matches!(
            err,
            FaultConfigError::ProbabilityOutOfRange { what: "drop", .. }
        ));
        assert!(err.to_string().contains("probability out of range"));
    }

    #[test]
    fn validate_rejects_degenerate_partition() {
        let empty_side = FaultPlan::none().partition(vec![], vec![n(1)], 0, 5);
        assert_eq!(
            empty_side.validate(),
            Err(FaultConfigError::EmptyPartitionSide)
        );

        let both_sides = FaultPlan::none().partition(vec![n(1)], vec![n(1), n(2)], 0, 5);
        assert_eq!(
            both_sides.validate(),
            Err(FaultConfigError::NodeOnBothSides { node: n(1) })
        );

        let inverted = FaultPlan::none().partition(vec![n(0)], vec![n(1)], 7, 7);
        assert_eq!(
            inverted.validate(),
            Err(FaultConfigError::EmptyWindow { start: 7, end: 7 })
        );
    }

    #[test]
    fn amnesia_crash_is_flagged_and_queryable() {
        let plan = FaultPlan::none()
            .crash(n(1), 5, 8)
            .crash_amnesia(n(2), 10, 20);
        assert!(plan.validate().is_ok());
        assert!(!plan.amnesia_at(n(1), 6), "buffered crash is not amnesia");
        assert!(plan.amnesia_at(n(2), 10));
        assert!(plan.amnesia_at(n(2), 19));
        assert!(!plan.amnesia_at(n(2), 20), "restart tick is exclusive");
        assert_eq!(plan.crashed_until(n(2), 12), Some(20));
    }

    #[test]
    fn overlapping_amnesia_dominates_buffered_crash() {
        let plan = FaultPlan::none()
            .crash(n(0), 0, 30)
            .crash_amnesia(n(0), 10, 20);
        assert!(!plan.amnesia_at(n(0), 5));
        assert!(
            plan.amnesia_at(n(0), 15),
            "amnesia window wins inside overlap"
        );
        assert!(!plan.amnesia_at(n(0), 25));
    }

    #[test]
    fn validate_rejects_empty_crash_window() {
        let plan = FaultPlan::none().crash(n(0), 9, 3);
        assert_eq!(
            plan.validate(),
            Err(FaultConfigError::EmptyWindow { start: 9, end: 3 })
        );
    }

    #[test]
    fn duplication_targets_only_idempotent_classes() {
        assert!(MsgClass::StubTable.is_idempotent());
        assert!(MsgClass::ScionMessage.is_idempotent());
        assert!(!MsgClass::Dsm.is_idempotent());
        assert!(!MsgClass::GcBackground.is_idempotent());
    }

    #[test]
    fn error_messages_keep_design_wording() {
        let reliable = FaultConfigError::ReliableClassDrop {
            class: MsgClass::Dsm,
        };
        assert!(reliable.to_string().contains("assumed reliable"));
    }
}
