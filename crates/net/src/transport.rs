//! The transport seam: how envelopes move between protocol state machines.
//!
//! The paper specifies its protocol independently of the wire (Section 8
//! assumes only point-to-point FIFO channels and reliability for the DSM
//! class). The reproduction historically had exactly one message plane —
//! the deterministic discrete-event [`Network`](crate::Network) — and the
//! cluster driver was welded to it. This module abstracts the seam:
//!
//! * [`Transport`] is the object-safe contract a message plane offers a
//!   *running* cluster: hand over an envelope, poll a node's inbox,
//!   account full application of a delivery. The deterministic simulator
//!   keeps its richer mutable API (fault injection needs it); the trait
//!   covers what per-node drivers need, which is deliberately little.
//! * [`ChannelTransport`] is the real-parallelism implementation: one
//!   lock-free-facade channel per `(src, dst)` link (FIFO per link, no
//!   global order — exactly the loosely-coupled model), shared by any
//!   number of sending threads, polled by one driver thread per node.
//!
//! Quiescence is race-free by construction: [`Transport::in_flight`]
//! counts *send → fully-applied* (not send → received), and a driver only
//! calls [`Transport::ack_delivered`] after the dispatch completed under
//! the protocol lock. `in_flight() == 0` therefore means "no message
//! exists that could still change protocol state".

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use bmx_common::NodeId;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::network::{Envelope, MsgClass};

fn class_idx(class: MsgClass) -> usize {
    match class {
        MsgClass::Dsm => 0,
        MsgClass::ScionMessage => 1,
        MsgClass::StubTable => 2,
        MsgClass::GcBackground => 3,
    }
}

/// What a message plane owes a running cluster. Object-safe and `&self`
/// throughout: transports are shared across node driver threads.
pub trait Transport<M>: Send + Sync {
    /// Accepts `env` for delivery to `env.dst`. FIFO per `(src, dst)`.
    fn send_env(&self, env: Envelope<M>);

    /// Pops the next pending envelope addressed to `dst`, if any.
    /// Links into `dst` are polled fairly; per-link order is preserved.
    fn try_recv(&self, dst: NodeId) -> Option<Envelope<M>>;

    /// Accounts one previously popped envelope as *fully applied* (or
    /// deliberately discarded). Callers must pair every successful
    /// [`Transport::try_recv`] with exactly one ack, after the dispatch
    /// finished — this is what makes [`Transport::in_flight`] a sound
    /// quiescence barrier.
    fn ack_delivered(&self);

    /// Envelopes sent and not yet fully applied.
    fn in_flight(&self) -> u64;

    /// Envelopes accepted so far for `class`.
    fn sent(&self, class: MsgClass) -> u64;

    /// Envelopes discarded whole (shutdown drop policy) for `class`.
    fn dropped(&self, class: MsgClass) -> u64;

    /// Accounts an envelope discarded whole (shutdown drop policy, or a
    /// crashed node's purged inbox). Pair with
    /// [`Transport::ack_delivered`] like a delivery, so `in_flight`
    /// still converges to zero.
    fn note_dropped(&self, class: MsgClass);

    /// Total envelopes accepted across all classes.
    fn sent_total(&self) -> u64 {
        MsgClass::ALL.iter().map(|&c| self.sent(c)).sum()
    }

    /// Total envelopes discarded across all classes.
    fn dropped_total(&self) -> u64 {
        MsgClass::ALL.iter().map(|&c| self.dropped(c)).sum()
    }
}

struct Inbox<M> {
    /// One receiver per sending node, same index as `links[src]`.
    from: Vec<Receiver<Envelope<M>>>,
}

/// Crossbeam-channel message plane for the parallel runtime: `n*n`
/// unbounded FIFO links. Senders are lock-free from any thread; each
/// node's inbox is polled by its driver (the mutex around it is
/// uncontended in the one-driver-per-node regime and exists only to keep
/// the API `&self`).
pub struct ChannelTransport<M> {
    /// `links[src][dst]`: the sending half of each directed link.
    links: Vec<Vec<Sender<Envelope<M>>>>,
    /// `inboxes[dst]`: the receiving halves, per source.
    inboxes: Vec<Mutex<Inbox<M>>>,
    /// Round-robin cursor per destination, for fair link polling.
    cursors: Vec<AtomicUsize>,
    /// Per-(src,dst) FIFO sequence counters (flattened `src * n + dst`).
    seqs: Vec<AtomicU64>,
    in_flight: AtomicU64,
    sent: [AtomicU64; 4],
    dropped: [AtomicU64; 4],
    nodes: usize,
}

impl<M: Send> ChannelTransport<M> {
    /// Builds the full mesh for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        let mut links: Vec<Vec<Sender<Envelope<M>>>> = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        let mut rx_grid: Vec<Vec<Receiver<Envelope<M>>>> = (0..n).map(|_| Vec::new()).collect();
        for _src in 0..n {
            let mut row = Vec::with_capacity(n);
            for (dst, dst_rxs) in rx_grid.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                row.push(tx);
                let _ = dst;
                dst_rxs.push(rx);
            }
            links.push(row);
        }
        for from in rx_grid {
            inboxes.push(Mutex::new(Inbox { from }));
        }
        ChannelTransport {
            links,
            inboxes,
            cursors: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            seqs: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            in_flight: AtomicU64::new(0),
            sent: Default::default(),
            dropped: Default::default(),
            nodes: n,
        }
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Mints the next per-link FIFO sequence number (1-based, matching the
    /// simulator's numbering).
    pub fn next_seq(&self, src: NodeId, dst: NodeId) -> u64 {
        let idx = src.0 as usize * self.nodes + dst.0 as usize;
        self.seqs[idx].fetch_add(1, Ordering::Relaxed) + 1
    }
}

impl<M: Send> Transport<M> for ChannelTransport<M> {
    fn send_env(&self, env: Envelope<M>) {
        self.sent[class_idx(env.class)].fetch_add(1, Ordering::Relaxed);
        // Increment before the channel push: a receiver that pops the
        // envelope must always observe in_flight >= 1 until it acks.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let (src, dst) = (env.src.0 as usize, env.dst.0 as usize);
        if self.links[src][dst].send(env).is_err() {
            // Receiver side already torn down (shutdown race): the message
            // can never be applied; account it as dropped whole.
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn try_recv(&self, dst: NodeId) -> Option<Envelope<M>> {
        let d = dst.0 as usize;
        let inbox = self.inboxes[d].lock().expect("inbox mutex");
        let n = inbox.from.len();
        let start = self.cursors[d].fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let src = (start + i) % n;
            if let Some(env) = inbox.from[src].try_recv() {
                return Some(env);
            }
        }
        None
    }

    fn ack_delivered(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    fn sent(&self, class: MsgClass) -> u64 {
        self.sent[class_idx(class)].load(Ordering::Relaxed)
    }

    fn dropped(&self, class: MsgClass) -> u64 {
        self.dropped[class_idx(class)].load(Ordering::Relaxed)
    }

    fn note_dropped(&self, class: MsgClass) {
        self.dropped[class_idx(class)].fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx_common::MsgSeq;

    fn env(src: u32, dst: u32, seq: u64, v: u64) -> Envelope<u64> {
        Envelope {
            src: NodeId(src),
            dst: NodeId(dst),
            seq: MsgSeq(seq),
            class: MsgClass::Dsm,
            lamport: 0,
            span: 0,
            payload: v,
        }
    }

    #[test]
    fn per_link_fifo_is_preserved() {
        let t: ChannelTransport<u64> = ChannelTransport::new(3);
        for i in 0..10 {
            t.send_env(env(0, 2, t.next_seq(NodeId(0), NodeId(2)), i));
        }
        let mut got = Vec::new();
        while let Some(e) = t.try_recv(NodeId(2)) {
            got.push(e.payload);
            t.ack_delivered();
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn in_flight_counts_until_ack_not_until_recv() {
        let t: ChannelTransport<u64> = ChannelTransport::new(2);
        t.send_env(env(0, 1, 1, 7));
        assert_eq!(t.in_flight(), 1);
        let e = t.try_recv(NodeId(1)).expect("queued");
        assert_eq!(e.payload, 7);
        assert_eq!(
            t.in_flight(),
            1,
            "popped but not applied is still in flight"
        );
        t.ack_delivered();
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn fair_polling_drains_every_source() {
        let t: ChannelTransport<u64> = ChannelTransport::new(4);
        for src in 0..3u32 {
            for i in 0..5 {
                t.send_env(env(src, 3, i + 1, u64::from(src) * 100 + i));
            }
        }
        let mut per_src = [0usize; 3];
        while let Some(e) = t.try_recv(NodeId(3)) {
            per_src[e.src.0 as usize] += 1;
            t.ack_delivered();
        }
        assert_eq!(per_src, [5, 5, 5]);
    }

    #[test]
    fn concurrent_senders_one_receiver() {
        let t = std::sync::Arc::new(ChannelTransport::<u64>::new(2));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    t.send_env(env(0, 1, t.next_seq(NodeId(0), NodeId(1)), w * 1000 + i));
                }
            }));
        }
        let recv = {
            let t = std::sync::Arc::clone(&t);
            std::thread::spawn(move || {
                let mut got = 0u64;
                let mut idle = 0;
                while got < 1000 {
                    match t.try_recv(NodeId(1)) {
                        Some(_) => {
                            t.ack_delivered();
                            got += 1;
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            assert!(idle < 1_000_000, "receiver starved");
                            std::thread::yield_now();
                        }
                    }
                }
                got
            })
        };
        for h in handles {
            h.join().expect("sender");
        }
        assert_eq!(recv.join().expect("receiver"), 1000);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.sent(MsgClass::Dsm), 1000);
    }
}
