//! Deterministic simulated network for the BMX reproduction.
//!
//! The paper targets a loosely coupled network of workstations. Its collector
//! needs exactly three properties from the transport (Sections 4.4, 6.1, 8):
//!
//! 1. **Point-to-point FIFO** — reachability tables must arrive in order per
//!    channel; this is achieved by numbering messages.
//! 2. **Unreliability is tolerated** for GC traffic — reachability tables are
//!    idempotent and may simply be re-sent, so no reliable protocol is
//!    required for them. (DSM protocol traffic, by contrast, is assumed
//!    reliable.)
//! 3. **Piggy-backing** — relocation records, intra-bunch SSP requests, and
//!    reachability tables can ride on messages the DSM protocol sends on
//!    behalf of applications, costing zero extra messages.
//!
//! This crate provides a discrete-event network with those three properties,
//! plus the accounting the experiments need: per-class message and byte
//! counts, and drop injection on the lossy classes. See DESIGN.md
//! ("Substitutions") for why a simulated network is the right substrate here.
//!
//! # Examples
//!
//! FIFO delivery with loss injection on a loss-tolerant class:
//!
//! ```
//! use bmx_common::NodeId;
//! use bmx_net::{MsgClass, Network, NetworkConfig, WireSize};
//!
//! #[derive(Clone)]
//! struct Ping(u64);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> u64 { 8 }
//! }
//!
//! let cfg = NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 1.0);
//! let mut net: Network<Ping> = Network::new(cfg);
//! net.send(NodeId(0), NodeId(1), MsgClass::Dsm, Ping(1));
//! net.send(NodeId(0), NodeId(1), MsgClass::StubTable, Ping(2)); // eaten
//! net.send(NodeId(0), NodeId(1), MsgClass::Dsm, Ping(3));
//! let got = net.tick();
//! let vals: Vec<u64> = got.iter().map(|e| e.payload.0).collect();
//! assert_eq!(vals, vec![1, 3], "survivors arrive in order");
//! assert_eq!(net.class_stats(MsgClass::StubTable).dropped, 1);
//! ```

pub mod fault;
pub mod fault_transport;
pub mod network;
pub mod piggyback;
pub mod transport;

pub use fault::{
    CrashEvent, FaultConfigError, FaultEvent, FaultPlan, FaultStats, LinkFault, Partition,
};
pub use fault_transport::{
    FaultyTransport, ParallelFaultPlan, ParallelFaultStats, ParallelLinkFault, ParallelPartition,
};
pub use network::{ClassStats, Envelope, MsgClass, Network, NetworkConfig, WireSize};
pub use piggyback::PiggybackBuffer;
pub use transport::{ChannelTransport, Transport};
