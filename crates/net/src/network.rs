//! The discrete-event point-to-point network.

use std::collections::{BTreeMap, VecDeque};

use bmx_common::{MsgSeq, NodeId, SplitMix64};

/// Classes of traffic, with distinct reliability and accounting.
///
/// The experiment harness separates "messages the application would have paid
/// for anyway" (DSM protocol traffic) from "messages that exist only because
/// of the collector" (scion-messages, stub tables, explicit relocation
/// rounds). The paper's zero-overhead claims are statements about the second
/// group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MsgClass {
    /// Consistency-protocol traffic sent on behalf of applications
    /// (token requests/grants, invalidations). Assumed reliable.
    Dsm,
    /// Scion-messages announcing a new cross-node inter-bunch reference.
    ScionMessage,
    /// Idempotent reachability tables (new stubs + exiting ownerPtrs) for the
    /// scion cleaner. Tolerates loss; requires only FIFO.
    StubTable,
    /// Explicit relocation/background GC traffic (from-space reuse protocol,
    /// non-piggy-backed address updates).
    GcBackground,
}

impl MsgClass {
    /// All classes, for iteration in reports.
    pub const ALL: [MsgClass; 4] =
        [MsgClass::Dsm, MsgClass::ScionMessage, MsgClass::StubTable, MsgClass::GcBackground];

    /// Whether the collector design *requires* this class to be delivered
    /// reliably. Only the DSM protocol itself does.
    pub fn requires_reliability(self) -> bool {
        matches!(self, MsgClass::Dsm)
    }
}

/// Sizing hook so the network can account bytes without knowing payload types.
pub trait WireSize {
    /// Approximate serialized size of the value in bytes.
    fn wire_size(&self) -> u64;
}

/// A message in flight or delivered.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Per-(src, dst) FIFO sequence number.
    pub seq: MsgSeq,
    /// Traffic class (reliability + accounting).
    pub class: MsgClass,
    /// The payload.
    pub payload: M,
}

/// Network configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Delivery latency in ticks for every message (uniform keeps FIFO
    /// trivially true; the design only needs per-channel FIFO, not global
    /// ordering).
    pub latency: u64,
    /// Per-class drop probability, applied only to classes that tolerate
    /// loss; configuring a drop rate on [`MsgClass::Dsm`] is rejected at
    /// construction since the DSM protocol assumes reliable delivery.
    pub drop_rate: BTreeMap<MsgClass, f64>,
    /// RNG seed for drop injection.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig { latency: 1, drop_rate: BTreeMap::new(), seed: 0xB_A5E }
    }
}

impl NetworkConfig {
    /// A lossless network with the given latency.
    pub fn lossless(latency: u64) -> Self {
        NetworkConfig { latency, ..Default::default() }
    }

    /// Sets a drop probability for a loss-tolerant class.
    ///
    /// # Panics
    ///
    /// Panics if `class` requires reliability or `p` is not in `[0, 1]`.
    pub fn with_drop(mut self, class: MsgClass, p: f64) -> Self {
        assert!(
            !class.requires_reliability(),
            "{class:?} is assumed reliable by the DSM protocol"
        );
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_rate.insert(class, p);
        self
    }
}

/// Per-class traffic counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ClassStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages dropped by loss injection.
    pub dropped: u64,
    /// Payload bytes accepted for delivery.
    pub bytes: u64,
}

struct InFlight<M> {
    deliver_at: u64,
    env: Envelope<M>,
}

/// The simulated network.
///
/// Time is a logical tick counter advanced by [`Network::tick`]. Messages
/// sent at time `t` become deliverable at `t + latency`, in per-channel FIFO
/// order. Loss injection happens at send time, which preserves FIFO of the
/// surviving messages (exactly the guarantee of numbering messages on a lossy
/// link and discarding gaps).
pub struct Network<M> {
    cfg: NetworkConfig,
    now: u64,
    rng: SplitMix64,
    /// Per-(src, dst) FIFO of in-flight messages.
    channels: BTreeMap<(NodeId, NodeId), VecDeque<InFlight<M>>>,
    /// Per-(src, dst) next sequence number.
    seqs: BTreeMap<(NodeId, NodeId), MsgSeq>,
    stats: BTreeMap<MsgClass, ClassStats>,
}

impl<M: WireSize> Network<M> {
    /// Creates an empty network.
    pub fn new(cfg: NetworkConfig) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        Network { cfg, now: 0, rng, channels: BTreeMap::new(), seqs: BTreeMap::new(), stats: BTreeMap::new() }
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sends `payload` from `src` to `dst` under `class`.
    ///
    /// Returns the sequence number the message was stamped with, whether or
    /// not loss injection subsequently discarded it (the sender cannot know).
    pub fn send(&mut self, src: NodeId, dst: NodeId, class: MsgClass, payload: M) -> MsgSeq {
        let seq = self.seqs.entry((src, dst)).or_default().bump();
        let stats = self.stats.entry(class).or_default();
        let dropped = match self.cfg.drop_rate.get(&class) {
            Some(&p) => self.rng.chance(p),
            None => false,
        };
        if dropped {
            stats.dropped += 1;
            return seq;
        }
        stats.sent += 1;
        stats.bytes += payload.wire_size();
        let env = Envelope { src, dst, seq, class, payload };
        self.channels
            .entry((src, dst))
            .or_default()
            .push_back(InFlight { deliver_at: self.now + self.cfg.latency, env });
        seq
    }

    /// Advances time by one tick and returns every message that became
    /// deliverable, in deterministic (channel, FIFO) order.
    pub fn tick(&mut self) -> Vec<Envelope<M>> {
        self.now += 1;
        self.drain_due()
    }

    /// Returns messages already due without advancing time.
    pub fn drain_due(&mut self) -> Vec<Envelope<M>> {
        let now = self.now;
        let mut out = Vec::new();
        for queue in self.channels.values_mut() {
            while queue.front().is_some_and(|m| m.deliver_at <= now) {
                out.push(queue.pop_front().expect("front checked").env);
            }
        }
        out
    }

    /// Runs ticks until no message is in flight, invoking `handler` for each
    /// delivery; the handler may send further messages through the network it
    /// is given. Returns the number of ticks executed.
    ///
    /// This is the main pump used by the cluster simulation: deliveries and
    /// their cascading replies run to quiescence deterministically.
    pub fn run_to_quiescence(
        &mut self,
        mut handler: impl FnMut(&mut Self, Envelope<M>),
    ) -> u64 {
        let start = self.now;
        while self.in_flight() > 0 {
            for env in self.tick() {
                handler(self, env);
            }
        }
        self.now - start
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.channels.values().map(VecDeque::len).sum()
    }

    /// Traffic counters for one class.
    pub fn class_stats(&self, class: MsgClass) -> ClassStats {
        self.stats.get(&class).copied().unwrap_or_default()
    }

    /// Total messages accepted across all classes.
    pub fn total_sent(&self) -> u64 {
        self.stats.values().map(|s| s.sent).sum()
    }

    /// Total messages dropped across all classes.
    pub fn total_dropped(&self) -> u64 {
        self.stats.values().map(|s| s.dropped).sum()
    }

    /// Resets traffic counters (in-flight messages are unaffected).
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }

    /// Changes the drop probability of a loss-tolerant class at runtime
    /// (e.g. to heal the network after a loss-injection phase).
    ///
    /// # Panics
    ///
    /// Panics if `class` requires reliability or `p` is out of `[0, 1]`.
    pub fn set_drop(&mut self, class: MsgClass, p: f64) {
        assert!(
            !class.requires_reliability(),
            "{class:?} is assumed reliable by the DSM protocol"
        );
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        if p == 0.0 {
            self.cfg.drop_rate.remove(&class);
        } else {
            self.cfg.drop_rate.insert(class, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct P(u64);

    impl WireSize for P {
        fn wire_size(&self) -> u64 {
            8
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn delivery_respects_latency() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(2));
        net.send(n(0), n(1), MsgClass::Dsm, P(7));
        assert!(net.tick().is_empty(), "too early after one tick");
        let got = net.tick();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, P(7));
        assert_eq!(got[0].src, n(0));
        assert_eq!(got[0].dst, n(1));
    }

    #[test]
    fn per_channel_fifo_order() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        for i in 0..10 {
            net.send(n(0), n(1), MsgClass::StubTable, P(i));
        }
        let got = net.tick();
        let vals: Vec<u64> = got.iter().map(|e| e.payload.0).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
        let seqs: Vec<u64> = got.iter().map(|e| e.seq.0).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_numbers_are_per_channel() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        let a = net.send(n(0), n(1), MsgClass::Dsm, P(0));
        let b = net.send(n(0), n(2), MsgClass::Dsm, P(0));
        let c = net.send(n(0), n(1), MsgClass::Dsm, P(0));
        assert_eq!(a, MsgSeq(1));
        assert_eq!(b, MsgSeq(1));
        assert_eq!(c, MsgSeq(2));
    }

    #[test]
    fn loss_injection_drops_only_lossy_class() {
        let cfg = NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 1.0);
        let mut net: Network<P> = Network::new(cfg);
        net.send(n(0), n(1), MsgClass::StubTable, P(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(2));
        let got = net.tick();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].class, MsgClass::Dsm);
        assert_eq!(net.class_stats(MsgClass::StubTable).dropped, 1);
        assert_eq!(net.class_stats(MsgClass::Dsm).sent, 1);
    }

    #[test]
    #[should_panic(expected = "assumed reliable")]
    fn dsm_class_cannot_be_lossy() {
        let _ = NetworkConfig::lossless(1).with_drop(MsgClass::Dsm, 0.5);
    }

    #[test]
    fn fifo_survives_loss() {
        // With 50% loss the survivors must still arrive in send order.
        let cfg = NetworkConfig::lossless(1).with_drop(MsgClass::GcBackground, 0.5);
        let mut net: Network<P> = Network::new(cfg);
        for i in 0..100 {
            net.send(n(3), n(4), MsgClass::GcBackground, P(i));
        }
        let got = net.tick();
        let vals: Vec<u64> = got.iter().map(|e| e.payload.0).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted, "survivors out of order");
        assert!(net.class_stats(MsgClass::GcBackground).dropped > 0);
        assert!(!vals.is_empty());
    }

    #[test]
    fn run_to_quiescence_handles_cascades() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(3));
        let mut deliveries = 0;
        net.run_to_quiescence(|net, env| {
            deliveries += 1;
            // Each delivery of P(k>0) triggers a reply P(k-1).
            if env.payload.0 > 0 {
                net.send(env.dst, env.src, MsgClass::Dsm, P(env.payload.0 - 1));
            }
        });
        assert_eq!(deliveries, 4, "3 -> 2 -> 1 -> 0");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn byte_accounting() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(2));
        assert_eq!(net.class_stats(MsgClass::Dsm).bytes, 16);
        assert_eq!(net.total_sent(), 2);
        net.reset_stats();
        assert_eq!(net.total_sent(), 0);
        assert_eq!(net.in_flight(), 2, "reset_stats leaves traffic alone");
    }

    #[test]
    fn drain_due_does_not_advance_time() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(0));
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        assert_eq!(net.drain_due().len(), 1);
        assert_eq!(net.now(), 0);
    }
}
