//! The discrete-event point-to-point network.

use std::collections::{BTreeMap, VecDeque};

use bmx_common::{MsgSeq, NodeId, SplitMix64};
use bmx_metrics as metrics;
use bmx_metrics::{Ctr, Gge, LinkCtr};
use bmx_profile as profile;
use bmx_trace as trace;

use crate::fault::{FaultConfigError, FaultEvent, FaultPlan, FaultStats};

/// Classes of traffic, with distinct reliability and accounting.
///
/// The experiment harness separates "messages the application would have paid
/// for anyway" (DSM protocol traffic) from "messages that exist only because
/// of the collector" (scion-messages, stub tables, explicit relocation
/// rounds). The paper's zero-overhead claims are statements about the second
/// group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MsgClass {
    /// Consistency-protocol traffic sent on behalf of applications
    /// (token requests/grants, invalidations). Assumed reliable.
    Dsm,
    /// Scion-messages announcing a new cross-node inter-bunch reference.
    ScionMessage,
    /// Idempotent reachability tables (new stubs + exiting ownerPtrs) for the
    /// scion cleaner. Tolerates loss; requires only FIFO.
    StubTable,
    /// Explicit relocation/background GC traffic (from-space reuse protocol,
    /// non-piggy-backed address updates).
    GcBackground,
}

impl MsgClass {
    /// All classes, for iteration in reports.
    pub const ALL: [MsgClass; 4] = [
        MsgClass::Dsm,
        MsgClass::ScionMessage,
        MsgClass::StubTable,
        MsgClass::GcBackground,
    ];

    /// Whether the collector design *requires* this class to be delivered
    /// reliably. Only the DSM protocol itself does.
    pub fn requires_reliability(self) -> bool {
        matches!(self, MsgClass::Dsm)
    }

    /// The trace-event lane mirroring this class (`bmx-trace` cannot name
    /// `MsgClass` without a dependency cycle).
    pub fn lane(self) -> trace::MsgLane {
        match self {
            MsgClass::Dsm => trace::MsgLane::Dsm,
            MsgClass::ScionMessage => trace::MsgLane::ScionMessage,
            MsgClass::StubTable => trace::MsgLane::StubTable,
            MsgClass::GcBackground => trace::MsgLane::GcBackground,
        }
    }
}

/// Sizing hook so the network can account bytes without knowing payload types.
pub trait WireSize {
    /// Approximate serialized size of the value in bytes.
    fn wire_size(&self) -> u64;
}

/// A message in flight or delivered.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Per-(src, dst) FIFO sequence number.
    pub seq: MsgSeq,
    /// Traffic class (reliability + accounting).
    pub class: MsgClass,
    /// The sender's Lamport clock stamp, piggy-backed for the tracing
    /// layer (0 when tracing is disabled). Carries no protocol meaning:
    /// nothing in the simulation reads it, so traced and untraced runs
    /// are bit-identical.
    pub lamport: u64,
    /// The sender's wall-clock profiler flow id (0 when profiling is
    /// disabled or the send belongs to no flow). Same contract as
    /// `lamport`: purely observational, no protocol meaning — it lets a
    /// driver thread attribute the apply of this envelope (and any sends
    /// it stages) to the mutator operation that caused it, stitching a
    /// cross-node acquire into one Perfetto track.
    pub span: u64,
    /// The payload.
    pub payload: M,
}

/// Network configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Delivery latency in ticks for every message (uniform keeps FIFO
    /// trivially true; the design only needs per-channel FIFO, not global
    /// ordering).
    pub latency: u64,
    /// Per-class drop probability, applied only to classes that tolerate
    /// loss; configuring a drop rate on [`MsgClass::Dsm`] is rejected at
    /// construction since the DSM protocol assumes reliable delivery.
    pub drop_rate: BTreeMap<MsgClass, f64>,
    /// RNG seed for drop injection.
    pub seed: u64,
    /// Chaos fault schedule (per-link faults, partitions, crashes). Quiet by
    /// default; see [`crate::fault`] for semantics.
    pub fault: FaultPlan,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: 1,
            drop_rate: BTreeMap::new(),
            seed: 0xB_A5E,
            fault: FaultPlan::none(),
        }
    }
}

impl NetworkConfig {
    /// A lossless network with the given latency.
    pub fn lossless(latency: u64) -> Self {
        NetworkConfig {
            latency,
            ..Default::default()
        }
    }

    /// Sets a drop probability for a loss-tolerant class, rejecting
    /// configurations the design forbids with a typed error.
    pub fn try_with_drop(mut self, class: MsgClass, p: f64) -> Result<Self, FaultConfigError> {
        validate_drop(class, p)?;
        self.drop_rate.insert(class, p);
        Ok(self)
    }

    /// Sets a drop probability for a loss-tolerant class.
    ///
    /// # Panics
    ///
    /// Panics if `class` requires reliability or `p` is not in `[0, 1]`.
    /// Use [`NetworkConfig::try_with_drop`] to handle the rejection instead.
    pub fn with_drop(self, class: MsgClass, p: f64) -> Self {
        self.try_with_drop(class, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attaches a chaos fault schedule, rejecting invalid plans.
    pub fn try_with_fault(mut self, fault: FaultPlan) -> Result<Self, FaultConfigError> {
        fault.validate()?;
        self.fault = fault;
        Ok(self)
    }

    /// Attaches a chaos fault schedule.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn with_fault(self, fault: FaultPlan) -> Self {
        self.try_with_fault(fault).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validates the whole configuration (class drop rates + fault plan).
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (&class, &p) in &self.drop_rate {
            validate_drop(class, p)?;
        }
        self.fault.validate()
    }
}

fn validate_drop(class: MsgClass, p: f64) -> Result<(), FaultConfigError> {
    if class.requires_reliability() {
        return Err(FaultConfigError::ReliableClassDrop { class });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultConfigError::ProbabilityOutOfRange {
            what: "drop",
            value: p,
        });
    }
    Ok(())
}

/// Per-class traffic counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ClassStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages dropped by loss injection.
    pub dropped: u64,
    /// Extra copies delivered by duplication faults (not counted in `sent`).
    pub duplicated: u64,
    /// Payload bytes accepted for delivery.
    pub bytes: u64,
}

struct InFlight<M> {
    deliver_at: u64,
    env: Envelope<M>,
}

/// The simulated network.
///
/// Time is a logical tick counter advanced by [`Network::tick`]. Messages
/// sent at time `t` become deliverable at `t + latency`, in per-channel FIFO
/// order. Loss injection happens at send time, which preserves FIFO of the
/// surviving messages (exactly the guarantee of numbering messages on a lossy
/// link and discarding gaps).
pub struct Network<M> {
    cfg: NetworkConfig,
    now: u64,
    rng: SplitMix64,
    /// Per-(src, dst) FIFO of in-flight messages.
    channels: BTreeMap<(NodeId, NodeId), VecDeque<InFlight<M>>>,
    /// Per-(src, dst) next sequence number.
    seqs: BTreeMap<(NodeId, NodeId), MsgSeq>,
    stats: BTreeMap<MsgClass, ClassStats>,
    fault_stats: FaultStats,
    /// Fault transitions since the last [`Network::drain_fault_events`].
    events: Vec<FaultEvent>,
    /// Per-partition "already healed" latch (index-aligned with the plan).
    partition_healed: Vec<bool>,
    /// Per-crash-event phase: 0 = pending, 1 = down, 2 = restarted.
    crash_phase: Vec<u8>,
}

impl<M: WireSize + Clone> Network<M> {
    /// Creates an empty network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetworkConfig::validate`]; use
    /// [`Network::try_new`] to handle the rejection instead.
    pub fn new(cfg: NetworkConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an empty network, rejecting an invalid configuration with a
    /// typed error.
    pub fn try_new(cfg: NetworkConfig) -> Result<Self, FaultConfigError> {
        cfg.validate()?;
        let rng = SplitMix64::new(cfg.seed);
        let partition_healed = vec![false; cfg.fault.partitions.len()];
        let crash_phase = vec![0; cfg.fault.crashes.len()];
        Ok(Network {
            cfg,
            now: 0,
            rng,
            channels: BTreeMap::new(),
            seqs: BTreeMap::new(),
            stats: BTreeMap::new(),
            fault_stats: FaultStats::default(),
            events: Vec::new(),
            partition_healed,
            crash_phase,
        })
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sends `payload` from `src` to `dst` under `class`.
    ///
    /// Returns the sequence number the message was stamped with, whether or
    /// not loss injection subsequently discarded it (the sender cannot know).
    ///
    /// Fault handling, in draw order (so runs replay bit-exactly from the
    /// seed): class-level loss, per-link loss, per-link duplication (only
    /// for idempotent classes), per-link latency jitter, then outage
    /// handling — a crashed endpoint or severing partition discards
    /// loss-tolerant traffic and holds reliable traffic until the outage
    /// ends. Per-channel FIFO is preserved throughout by clamping each
    /// delivery time against the channel's scheduled tail.
    pub fn send(&mut self, src: NodeId, dst: NodeId, class: MsgClass, payload: M) -> MsgSeq {
        let seq = self.seqs.entry((src, dst)).or_default().bump();
        let drop_event = trace::TraceEvent::MsgDrop {
            dst,
            seq: seq.0,
            lane: class.lane(),
        };
        let class_dropped = match self.cfg.drop_rate.get(&class) {
            Some(&p) => self.rng.chance(p),
            None => false,
        };
        if class_dropped {
            self.stats.entry(class).or_default().dropped += 1;
            metrics::link(src, dst, LinkCtr::Drop, 1);
            trace::emit(src, drop_event);
            return seq;
        }
        let fault = self.cfg.fault.link_fault(src, dst);
        if !class.requires_reliability() && fault.drop > 0.0 && self.rng.chance(fault.drop) {
            self.stats.entry(class).or_default().dropped += 1;
            self.fault_stats.link_dropped += 1;
            metrics::link(src, dst, LinkCtr::Drop, 1);
            trace::emit(src, drop_event);
            return seq;
        }
        let duplicate =
            class.is_idempotent() && fault.duplicate > 0.0 && self.rng.chance(fault.duplicate);
        let jitter = if fault.jitter > 0 {
            self.rng.next_below(fault.jitter + 1)
        } else {
            0
        };
        let mut deliver_at = self.now + self.cfg.latency + jitter;

        // Outages. A crash dominates a concurrent partition for accounting;
        // a held reliable message waits out whichever outage ends last.
        let crashed = self
            .cfg
            .fault
            .crashed_until(src, self.now)
            .max(self.cfg.fault.crashed_until(dst, self.now));
        let severed = self.cfg.fault.severed_until(src, dst, self.now);
        if crashed.is_some() || severed.is_some() {
            if class.requires_reliability() {
                // An amnesia crash drops reliable traffic instead of holding
                // it: the crashed endpoint has no state for a retransmission
                // protocol to resume against.
                if crashed.is_some()
                    && (self.cfg.fault.amnesia_at(src, self.now)
                        || self.cfg.fault.amnesia_at(dst, self.now))
                {
                    self.fault_stats.amnesia_dropped += 1;
                    self.stats.entry(class).or_default().dropped += 1;
                    metrics::link(src, dst, LinkCtr::Drop, 1);
                    trace::emit(src, drop_event);
                    return seq;
                }
                if crashed.is_some() {
                    self.fault_stats.crash_held += 1;
                } else {
                    self.fault_stats.partition_held += 1;
                }
                let outage_end = crashed.max(severed).expect("one outage checked");
                deliver_at = deliver_at.max(outage_end + self.cfg.latency);
            } else {
                if crashed.is_some() {
                    self.fault_stats.crash_dropped += 1;
                } else {
                    self.fault_stats.partition_dropped += 1;
                }
                self.stats.entry(class).or_default().dropped += 1;
                metrics::link(src, dst, LinkCtr::Drop, 1);
                trace::emit(src, drop_event);
                return seq;
            }
        }

        let wire = payload.wire_size();
        let stats = self.stats.entry(class).or_default();
        stats.sent += 1;
        stats.bytes += wire;
        metrics::link(src, dst, LinkCtr::Send, 1);
        metrics::link(src, dst, LinkCtr::Bytes, wire);
        metrics::gauge_add(src, Gge::InflightBytes, wire);
        let queue = self.channels.entry((src, dst)).or_default();
        if let Some(tail) = queue.back() {
            // FIFO under jitter: never schedule before the channel's tail.
            deliver_at = deliver_at.max(tail.deliver_at);
        }
        // The send event's Lamport stamp rides on the envelope; a fault
        // duplicate clones it, which is right — one send, two arrivals.
        let lamport = trace::emit(
            src,
            trace::TraceEvent::MsgSend {
                dst,
                seq: seq.0,
                lane: class.lane(),
            },
        );
        let env = Envelope {
            src,
            dst,
            seq,
            class,
            lamport,
            // Like the Lamport stamp: the profiler flow of the thread
            // staging this send (a mutator mid-acquire, or a driver
            // applying an envelope that itself carried a flow).
            span: profile::current_flow(),
            payload,
        };
        if duplicate {
            stats.duplicated += 1;
            self.fault_stats.duplicates_injected += 1;
            metrics::link(src, dst, LinkCtr::Duplicate, 1);
            metrics::gauge_add(src, Gge::InflightBytes, wire);
            queue.push_back(InFlight {
                deliver_at,
                env: env.clone(),
            });
        }
        queue.push_back(InFlight { deliver_at, env });
        seq
    }

    /// Advances time by one tick and returns every message that became
    /// deliverable, in deterministic (channel, FIFO) order.
    pub fn tick(&mut self) -> Vec<Envelope<M>> {
        self.now += 1;
        trace::set_now(self.now);
        self.apply_fault_transitions();
        metrics::tick(self.now);
        self.drain_due()
    }

    /// Processes partition heals and crash/restart transitions due at `now`.
    /// Crashing a node purges its lossy in-flight traffic and reschedules
    /// reliable traffic to after the restart.
    fn apply_fault_transitions(&mut self) {
        let now = self.now;
        for (i, p) in self.cfg.fault.partitions.iter().enumerate() {
            if !self.partition_healed[i] && now >= p.end {
                self.partition_healed[i] = true;
                self.fault_stats.partitions_healed += 1;
                let mut members = p.a.clone();
                members.extend(p.b.iter().copied());
                if trace::enabled() {
                    for &m in &members {
                        trace::emit(
                            m,
                            trace::TraceEvent::Fault {
                                kind: trace::FaultKind::PartitionHeal,
                            },
                        );
                    }
                }
                for &m in &members {
                    metrics::bump(m, Ctr::FaultActivations);
                }
                self.events.push(FaultEvent::PartitionHealed { members });
            }
        }
        let mut purges: Vec<(NodeId, u64, bool)> = Vec::new();
        for (i, c) in self.cfg.fault.crashes.iter().enumerate() {
            if self.crash_phase[i] == 0 && now >= c.at {
                self.crash_phase[i] = 1;
                trace::emit(
                    c.node,
                    trace::TraceEvent::Fault {
                        kind: trace::FaultKind::Crash,
                    },
                );
                metrics::bump(c.node, Ctr::FaultActivations);
                self.events.push(FaultEvent::NodeCrashed {
                    node: c.node,
                    amnesia: c.amnesia,
                });
                purges.push((c.node, c.restart_at, c.amnesia));
            }
            if self.crash_phase[i] == 1 && now >= c.restart_at {
                self.crash_phase[i] = 2;
                self.fault_stats.restarts += 1;
                trace::emit(
                    c.node,
                    trace::TraceEvent::Fault {
                        kind: trace::FaultKind::Restart,
                    },
                );
                metrics::bump(c.node, Ctr::FaultActivations);
                self.events.push(FaultEvent::NodeRestarted {
                    node: c.node,
                    amnesia: c.amnesia,
                });
            }
        }
        for (node, restart_at, amnesia) in purges {
            self.purge_in_flight_for(node, restart_at, amnesia);
        }
    }

    /// Applies a crash of `node` to in-flight traffic: lossy messages on any
    /// link touching the node are discarded; reliable ones are pushed back to
    /// land after `restart_at`, keeping each channel's FIFO order. An amnesia
    /// crash discards *everything* touching the node — the send buffers died
    /// with the sender, and the receiver that would have acknowledged the
    /// retransmission no longer exists.
    fn purge_in_flight_for(&mut self, node: NodeId, restart_at: u64, amnesia: bool) {
        let latency = self.cfg.latency;
        for (&(src, dst), queue) in self.channels.iter_mut() {
            if src != node && dst != node {
                continue;
            }
            if amnesia {
                for m in queue.drain(..) {
                    if m.env.class.requires_reliability() {
                        self.fault_stats.amnesia_dropped += 1;
                    } else {
                        self.fault_stats.crash_dropped += 1;
                    }
                    metrics::gauge_sub(m.env.src, Gge::InflightBytes, m.env.payload.wire_size());
                }
                continue;
            }
            let mut kept = VecDeque::with_capacity(queue.len());
            let mut floor = 0;
            while let Some(mut m) = queue.pop_front() {
                if m.env.class.requires_reliability() {
                    m.deliver_at = m.deliver_at.max(restart_at + latency).max(floor);
                    floor = m.deliver_at;
                    kept.push_back(m);
                } else {
                    self.fault_stats.crash_dropped += 1;
                    metrics::gauge_sub(m.env.src, Gge::InflightBytes, m.env.payload.wire_size());
                }
            }
            *queue = kept;
        }
    }

    /// Returns messages already due without advancing time.
    pub fn drain_due(&mut self) -> Vec<Envelope<M>> {
        let now = self.now;
        let mut out = Vec::new();
        for queue in self.channels.values_mut() {
            while queue.front().is_some_and(|m| m.deliver_at <= now) {
                let env = queue.pop_front().expect("front checked").env;
                if metrics::enabled() {
                    metrics::gauge_sub(env.src, Gge::InflightBytes, env.payload.wire_size());
                }
                if trace::enabled() {
                    // Merge the piggy-backed sender clock first so the
                    // delivery event is stamped after the send.
                    trace::observe(env.dst, env.lamport);
                    trace::emit(
                        env.dst,
                        trace::TraceEvent::MsgDeliver {
                            src: env.src,
                            seq: env.seq.0,
                            lane: env.class.lane(),
                            sent_lamport: env.lamport,
                        },
                    );
                }
                out.push(env);
            }
        }
        out
    }

    /// Runs ticks until no message is in flight, invoking `handler` for each
    /// delivery; the handler may send further messages through the network it
    /// is given. Returns the number of ticks executed.
    ///
    /// This is the main pump used by the cluster simulation: deliveries and
    /// their cascading replies run to quiescence deterministically.
    pub fn run_to_quiescence(&mut self, mut handler: impl FnMut(&mut Self, Envelope<M>)) -> u64 {
        let start = self.now;
        while self.in_flight() > 0 {
            for env in self.tick() {
                handler(self, env);
            }
        }
        self.now - start
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.channels.values().map(VecDeque::len).sum()
    }

    /// Traffic counters for one class.
    pub fn class_stats(&self, class: MsgClass) -> ClassStats {
        self.stats.get(&class).copied().unwrap_or_default()
    }

    /// Total messages accepted across all classes.
    pub fn total_sent(&self) -> u64 {
        self.stats.values().map(|s| s.sent).sum()
    }

    /// Total messages dropped across all classes.
    pub fn total_dropped(&self) -> u64 {
        self.stats.values().map(|s| s.dropped).sum()
    }

    /// Resets traffic counters (in-flight messages are unaffected).
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }

    /// Changes the drop probability of a loss-tolerant class at runtime,
    /// rejecting configurations the design forbids with a typed error.
    pub fn try_set_drop(&mut self, class: MsgClass, p: f64) -> Result<(), FaultConfigError> {
        validate_drop(class, p)?;
        if p == 0.0 {
            self.cfg.drop_rate.remove(&class);
        } else {
            self.cfg.drop_rate.insert(class, p);
        }
        Ok(())
    }

    /// Changes the drop probability of a loss-tolerant class at runtime
    /// (e.g. to heal the network after a loss-injection phase).
    ///
    /// # Panics
    ///
    /// Panics if `class` requires reliability or `p` is out of `[0, 1]`.
    /// Use [`Network::try_set_drop`] to handle the rejection instead.
    pub fn set_drop(&mut self, class: MsgClass, p: f64) {
        self.try_set_drop(class, p)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// The fault schedule in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.cfg.fault
    }

    /// Counters for every fault injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Takes the fault transitions (heals, crashes, restarts) observed since
    /// the last call, in occurrence order.
    pub fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether `node` is currently crashed under the fault schedule.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.cfg.fault.crashed_until(node, self.now).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct P(u64);

    impl WireSize for P {
        fn wire_size(&self) -> u64 {
            8
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn delivery_respects_latency() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(2));
        net.send(n(0), n(1), MsgClass::Dsm, P(7));
        assert!(net.tick().is_empty(), "too early after one tick");
        let got = net.tick();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, P(7));
        assert_eq!(got[0].src, n(0));
        assert_eq!(got[0].dst, n(1));
    }

    #[test]
    fn per_channel_fifo_order() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        for i in 0..10 {
            net.send(n(0), n(1), MsgClass::StubTable, P(i));
        }
        let got = net.tick();
        let vals: Vec<u64> = got.iter().map(|e| e.payload.0).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
        let seqs: Vec<u64> = got.iter().map(|e| e.seq.0).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_numbers_are_per_channel() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        let a = net.send(n(0), n(1), MsgClass::Dsm, P(0));
        let b = net.send(n(0), n(2), MsgClass::Dsm, P(0));
        let c = net.send(n(0), n(1), MsgClass::Dsm, P(0));
        assert_eq!(a, MsgSeq(1));
        assert_eq!(b, MsgSeq(1));
        assert_eq!(c, MsgSeq(2));
    }

    #[test]
    fn loss_injection_drops_only_lossy_class() {
        let cfg = NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 1.0);
        let mut net: Network<P> = Network::new(cfg);
        net.send(n(0), n(1), MsgClass::StubTable, P(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(2));
        let got = net.tick();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].class, MsgClass::Dsm);
        assert_eq!(net.class_stats(MsgClass::StubTable).dropped, 1);
        assert_eq!(net.class_stats(MsgClass::Dsm).sent, 1);
    }

    #[test]
    #[should_panic(expected = "assumed reliable")]
    fn dsm_class_cannot_be_lossy() {
        let _ = NetworkConfig::lossless(1).with_drop(MsgClass::Dsm, 0.5);
    }

    #[test]
    fn fifo_survives_loss() {
        // With 50% loss the survivors must still arrive in send order.
        let cfg = NetworkConfig::lossless(1).with_drop(MsgClass::GcBackground, 0.5);
        let mut net: Network<P> = Network::new(cfg);
        for i in 0..100 {
            net.send(n(3), n(4), MsgClass::GcBackground, P(i));
        }
        let got = net.tick();
        let vals: Vec<u64> = got.iter().map(|e| e.payload.0).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted, "survivors out of order");
        assert!(net.class_stats(MsgClass::GcBackground).dropped > 0);
        assert!(!vals.is_empty());
    }

    #[test]
    fn run_to_quiescence_handles_cascades() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(3));
        let mut deliveries = 0;
        net.run_to_quiescence(|net, env| {
            deliveries += 1;
            // Each delivery of P(k>0) triggers a reply P(k-1).
            if env.payload.0 > 0 {
                net.send(env.dst, env.src, MsgClass::Dsm, P(env.payload.0 - 1));
            }
        });
        assert_eq!(deliveries, 4, "3 -> 2 -> 1 -> 0");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn byte_accounting() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(2));
        assert_eq!(net.class_stats(MsgClass::Dsm).bytes, 16);
        assert_eq!(net.total_sent(), 2);
        net.reset_stats();
        assert_eq!(net.total_sent(), 0);
        assert_eq!(net.in_flight(), 2, "reset_stats leaves traffic alone");
    }

    #[test]
    fn drain_due_does_not_advance_time() {
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(0));
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        assert_eq!(net.drain_due().len(), 1);
        assert_eq!(net.now(), 0);
    }

    #[test]
    fn try_new_rejects_invalid_fault_plan() {
        let mut cfg = NetworkConfig::lossless(1);
        cfg.fault = FaultPlan::none().all_links(crate::fault::LinkFault::dropping(2.0));
        let err = Network::<P>::try_new(cfg).err().expect("must be rejected");
        assert!(matches!(
            err,
            FaultConfigError::ProbabilityOutOfRange { .. }
        ));
    }

    #[test]
    fn try_new_rejects_reliable_class_drop() {
        let mut cfg = NetworkConfig::lossless(1);
        cfg.drop_rate.insert(MsgClass::Dsm, 0.1); // bypasses with_drop's check
        let err = Network::<P>::try_new(cfg).err().expect("must be rejected");
        assert_eq!(
            err,
            FaultConfigError::ReliableClassDrop {
                class: MsgClass::Dsm
            }
        );
    }

    #[test]
    #[should_panic(expected = "drop probability out of range")]
    fn with_drop_panics_on_bad_probability() {
        let _ = NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 1.5);
    }

    #[test]
    fn link_drop_spares_reliable_traffic() {
        let fault = FaultPlan::none().all_links(crate::fault::LinkFault::dropping(1.0));
        let cfg = NetworkConfig::lossless(1).with_fault(fault);
        let mut net: Network<P> = Network::new(cfg);
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(0), n(1), MsgClass::StubTable, P(2));
        let got = net.tick();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].class, MsgClass::Dsm);
        assert_eq!(net.fault_stats().link_dropped, 1);
        assert_eq!(net.class_stats(MsgClass::StubTable).dropped, 1);
    }

    #[test]
    fn duplication_hits_only_idempotent_classes() {
        let fault = FaultPlan::none().all_links(crate::fault::LinkFault {
            drop: 0.0,
            duplicate: 1.0,
            jitter: 0,
        });
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1).with_fault(fault));
        net.send(n(0), n(1), MsgClass::StubTable, P(1));
        net.send(n(0), n(1), MsgClass::Dsm, P(2));
        net.send(n(0), n(1), MsgClass::GcBackground, P(3));
        let got = net.tick();
        let vals: Vec<u64> = got.iter().map(|e| e.payload.0).collect();
        assert_eq!(vals, vec![1, 1, 2, 3], "only the stub table is doubled");
        assert_eq!(
            got[0].seq, got[1].seq,
            "the duplicate reuses the original seq"
        );
        assert_eq!(net.fault_stats().duplicates_injected, 1);
        assert_eq!(net.class_stats(MsgClass::StubTable).duplicated, 1);
        assert_eq!(net.class_stats(MsgClass::StubTable).sent, 1);
    }

    #[test]
    fn jitter_preserves_per_channel_fifo() {
        let fault = FaultPlan::none().all_links(crate::fault::LinkFault {
            drop: 0.0,
            duplicate: 0.0,
            jitter: 7,
        });
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1).with_fault(fault));
        for i in 0..50 {
            net.send(n(0), n(1), MsgClass::Dsm, P(i));
        }
        let mut vals = Vec::new();
        while net.in_flight() > 0 {
            vals.extend(net.tick().into_iter().map(|e| e.payload.0));
        }
        assert_eq!(
            vals,
            (0..50).collect::<Vec<_>>(),
            "jitter must not reorder a channel"
        );
        assert!(net.now() > 1, "some message was actually delayed");
    }

    #[test]
    fn partition_holds_reliable_and_drops_lossy() {
        let fault = FaultPlan::none().partition(vec![n(0)], vec![n(1)], 0, 10);
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1).with_fault(fault));
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(0), n(1), MsgClass::StubTable, P(2));
        net.send(n(1), n(0), MsgClass::Dsm, P(3)); // severed both ways
        net.send(n(0), n(0), MsgClass::Dsm, P(4)); // same side: unaffected

        let mut arrivals: Vec<(u64, u64)> = Vec::new();
        while net.in_flight() > 0 {
            let now_after = net.now() + 1;
            arrivals.extend(net.tick().into_iter().map(|e| (now_after, e.payload.0)));
        }
        assert_eq!(
            arrivals,
            vec![(1, 4), (11, 1), (11, 3)],
            "held until heal + latency"
        );
        let fs = net.fault_stats();
        assert_eq!(fs.partition_held, 2);
        assert_eq!(fs.partition_dropped, 1);
        assert_eq!(fs.partitions_healed, 1);
        let healed = net
            .drain_fault_events()
            .into_iter()
            .filter(|e| matches!(e, FaultEvent::PartitionHealed { .. }))
            .count();
        assert_eq!(healed, 1);
    }

    #[test]
    fn crash_purges_lossy_and_postpones_reliable_in_flight() {
        let fault = FaultPlan::none().crash(n(1), 2, 20);
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(5).with_fault(fault));
        // In flight before the crash: due at tick 5, but node 1 dies at 2.
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(0), n(1), MsgClass::GcBackground, P(2));
        let mut arrivals: Vec<(u64, u64)> = Vec::new();
        while net.in_flight() > 0 {
            let now_after = net.now() + 1;
            arrivals.extend(net.tick().into_iter().map(|e| (now_after, e.payload.0)));
        }
        assert_eq!(
            arrivals,
            vec![(25, 1)],
            "reliable lands restart + latency; lossy purged"
        );
        let fs = net.fault_stats();
        assert_eq!(fs.crash_dropped, 1);
        assert_eq!(fs.restarts, 1);
        let events = net.drain_fault_events();
        assert!(events.contains(&FaultEvent::NodeCrashed {
            node: n(1),
            amnesia: false
        }));
        assert!(events.contains(&FaultEvent::NodeRestarted {
            node: n(1),
            amnesia: false
        }));
    }

    #[test]
    fn amnesia_crash_drops_reliable_in_flight() {
        let fault = FaultPlan::none().crash_amnesia(n(1), 2, 20);
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(5).with_fault(fault));
        // In flight before the crash: due at tick 5, but node 1 dies at 2
        // with amnesia — nothing survives, reliable or not.
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(0), n(1), MsgClass::GcBackground, P(2));
        net.send(n(1), n(0), MsgClass::Dsm, P(3)); // from the dying sender
        let mut arrivals: Vec<(u64, u64)> = Vec::new();
        while net.in_flight() > 0 {
            let now_after = net.now() + 1;
            arrivals.extend(net.tick().into_iter().map(|e| (now_after, e.payload.0)));
        }
        assert!(arrivals.is_empty(), "amnesia drops everything in flight");
        let fs = net.fault_stats();
        assert_eq!(fs.amnesia_dropped, 2, "both reliable messages dropped");
        assert_eq!(fs.crash_dropped, 1, "the lossy message dropped");
        assert_eq!(fs.crash_held, 0, "nothing is buffered");
        // Drain the remaining outage so both transitions are observed.
        while net.now() < 20 {
            let _ = net.tick();
        }
        let events = net.drain_fault_events();
        assert!(events.contains(&FaultEvent::NodeCrashed {
            node: n(1),
            amnesia: true
        }));
        assert!(events.contains(&FaultEvent::NodeRestarted {
            node: n(1),
            amnesia: true
        }));
    }

    #[test]
    fn sends_during_amnesia_outage_are_dropped_not_held() {
        let fault = FaultPlan::none().crash_amnesia(n(1), 1, 6);
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1).with_fault(fault));
        let _ = net.tick(); // advance into the outage window
        assert!(net.is_down(n(1)));
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(1), n(0), MsgClass::StubTable, P(2));
        assert_eq!(net.fault_stats().amnesia_dropped, 1);
        assert_eq!(net.fault_stats().crash_dropped, 1);
        assert_eq!(net.fault_stats().crash_held, 0);
        assert_eq!(net.in_flight(), 0, "nothing buffered for the restart");
        // After the restart traffic flows normally again.
        while net.now() < 6 {
            let _ = net.tick();
        }
        net.send(n(0), n(1), MsgClass::Dsm, P(9));
        let got = net.tick();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, P(9));
    }

    #[test]
    fn sends_while_crashed_are_held_or_dropped() {
        let fault = FaultPlan::none().crash(n(1), 1, 6);
        let mut net: Network<P> = Network::new(NetworkConfig::lossless(1).with_fault(fault));
        let _ = net.tick(); // advance into the outage window
        assert!(net.is_down(n(1)));
        net.send(n(0), n(1), MsgClass::Dsm, P(1));
        net.send(n(1), n(0), MsgClass::StubTable, P(2)); // a crashed sender
        assert_eq!(net.fault_stats().crash_held, 1);
        assert_eq!(net.fault_stats().crash_dropped, 1);
        let mut arrivals = Vec::new();
        while net.in_flight() > 0 {
            let now_after = net.now() + 1;
            arrivals.extend(net.tick().into_iter().map(|e| (now_after, e.payload.0)));
        }
        assert_eq!(arrivals, vec![(7, 1)]);
    }

    #[test]
    fn chaos_runs_replay_bit_exact_from_the_seed() {
        let run = |seed: u64| {
            let fault = FaultPlan::none()
                .all_links(crate::fault::LinkFault {
                    drop: 0.3,
                    duplicate: 0.4,
                    jitter: 3,
                })
                .partition(vec![n(0)], vec![n(1)], 4, 9)
                .crash(n(2), 3, 12);
            let mut cfg = NetworkConfig::lossless(1).with_fault(fault);
            cfg.seed = seed;
            let mut net: Network<P> = Network::new(cfg);
            let mut trace = Vec::new();
            for i in 0..60u64 {
                let (s, d) = (n((i % 3) as u32), n(((i + 1) % 3) as u32));
                let class = match i % 4 {
                    0 => MsgClass::Dsm,
                    1 => MsgClass::ScionMessage,
                    2 => MsgClass::StubTable,
                    _ => MsgClass::GcBackground,
                };
                net.send(s, d, class, P(i));
                trace.extend(
                    net.tick()
                        .into_iter()
                        .map(|e| (e.src, e.dst, e.seq, e.payload.0)),
                );
            }
            while net.in_flight() > 0 {
                trace.extend(
                    net.tick()
                        .into_iter()
                        .map(|e| (e.src, e.dst, e.seq, e.payload.0)),
                );
            }
            (trace, net.fault_stats())
        };
        let (trace_a, stats_a) = run(0xC4A05);
        let (trace_b, stats_b) = run(0xC4A05);
        assert_eq!(trace_a, trace_b, "same seed, same delivery trace");
        assert_eq!(stats_a, stats_b, "same seed, same fault counters");
        let (trace_c, _) = run(0xC4A06);
        assert_ne!(trace_a, trace_c, "a different seed perturbs the run");
    }
}
