//! Piggy-back buffers.
//!
//! The collector never pays for its own messages when it can avoid it: an
//! object's new address "can be communicated to other nodes by piggy-backing
//! such information onto messages due to the consistency protocol, which are
//! performed on behalf of applications. Thus, no extra message is used"
//! (paper, Section 4.4). The same trick carries intra-bunch SSP creation
//! requests (Section 5, invariant 3) and, optionally, reachability tables
//! (Section 6.1).
//!
//! A [`PiggybackBuffer`] accumulates pending per-destination payloads; when
//! the DSM layer is about to send a message to node `d`, it drains the buffer
//! for `d` and attaches the result. A background flusher can also drain
//! buffers for destinations that see no DSM traffic (Section 4.4: if there is
//! no communication on behalf of applications, updates are only needed when
//! the from-space must be reused — then explicit messages are sent).

use std::collections::BTreeMap;

use bmx_common::NodeId;

/// Per-destination accumulation of payloads awaiting a carrier message.
#[derive(Clone, Debug)]
pub struct PiggybackBuffer<P> {
    pending: BTreeMap<NodeId, Vec<P>>,
}

impl<P> Default for PiggybackBuffer<P> {
    fn default() -> Self {
        PiggybackBuffer {
            pending: BTreeMap::new(),
        }
    }
}

impl<P> PiggybackBuffer<P> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `payload` for the next message toward `dst`.
    pub fn push(&mut self, dst: NodeId, payload: P) {
        self.pending.entry(dst).or_default().push(payload);
    }

    /// Queues `payload` for every destination in `dsts` (cloning as needed).
    pub fn push_all(&mut self, dsts: impl IntoIterator<Item = NodeId>, payload: P)
    where
        P: Clone,
    {
        for d in dsts {
            self.push(d, payload.clone());
        }
    }

    /// Removes and returns everything queued for `dst`.
    ///
    /// Called by the DSM layer right before sending a protocol message to
    /// `dst`; the drained payloads ride along for free.
    pub fn drain(&mut self, dst: NodeId) -> Vec<P> {
        self.pending.remove(&dst).unwrap_or_default()
    }

    /// Returns the destinations that currently have pending payloads.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.pending.keys().copied()
    }

    /// Number of payloads pending for `dst`.
    pub fn pending_for(&self, dst: NodeId) -> usize {
        self.pending.get(&dst).map_or(0, Vec::len)
    }

    /// Total payloads pending across all destinations.
    pub fn total_pending(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Returns `true` if nothing is pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn push_then_drain_is_fifo_per_destination() {
        let mut b = PiggybackBuffer::new();
        b.push(n(1), "a");
        b.push(n(2), "x");
        b.push(n(1), "b");
        assert_eq!(b.drain(n(1)), vec!["a", "b"]);
        assert_eq!(b.drain(n(1)), Vec::<&str>::new());
        assert_eq!(b.drain(n(2)), vec!["x"]);
        assert!(b.is_empty());
    }

    #[test]
    fn push_all_fans_out() {
        let mut b = PiggybackBuffer::new();
        b.push_all([n(1), n(2), n(3)], 42u32);
        assert_eq!(b.total_pending(), 3);
        assert_eq!(b.pending_for(n(2)), 1);
        let dsts: Vec<_> = b.destinations().collect();
        assert_eq!(dsts, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn drain_unknown_destination_is_empty() {
        let mut b: PiggybackBuffer<u8> = PiggybackBuffer::new();
        assert!(b.drain(n(9)).is_empty());
    }
}
