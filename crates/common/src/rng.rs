//! A tiny deterministic RNG for substrate-internal randomness.
//!
//! The network simulator needs reproducible "randomness" for message-loss
//! injection without dragging a full RNG crate into the low-level substrates;
//! `SplitMix64` is the standard 64-bit mixer and is more than adequate.
//! Workload generation (which benefits from distributions) uses the `rand`
//! crate instead, at the `bmx-workloads` layer.

/// SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased multiply-shift; the tiny modulo bias of the naive approach
        // would be invisible here, but doing it right costs one line.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(1234);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
