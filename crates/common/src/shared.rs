//! A cheaply clonable, immutable word buffer.
//!
//! Grant images travel from the capture site through the simulated network
//! (where fault injection may duplicate an envelope) to the install site.
//! Backing the payload with a reference-counted slab makes every clone on
//! that path a refcount bump instead of a memcpy of the object's words:
//! the words are copied exactly once, at capture.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable `u64` buffer with `O(1)` clone.
///
/// Dereferences to `&[u64]`, so reads are indistinguishable from a
/// `Vec<u64>`. There is deliberately no mutable access: a buffer may be
/// aliased by any number of in-flight envelopes.
#[derive(Clone)]
pub struct SharedWords(Arc<[u64]>);

impl SharedWords {
    /// The empty buffer.
    pub fn empty() -> SharedWords {
        SharedWords(Arc::from(Vec::new()))
    }

    /// Whether `a` and `b` alias the same backing slab (i.e. no words were
    /// copied to produce one from the other).
    pub fn same_slab(a: &SharedWords, b: &SharedWords) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl From<Vec<u64>> for SharedWords {
    fn from(v: Vec<u64>) -> SharedWords {
        SharedWords(Arc::from(v))
    }
}

impl From<&[u64]> for SharedWords {
    fn from(v: &[u64]) -> SharedWords {
        SharedWords(Arc::from(v))
    }
}

impl Deref for SharedWords {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.0
    }
}

impl PartialEq for SharedWords {
    fn eq(&self, other: &SharedWords) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0[..] == other.0[..]
    }
}

impl Eq for SharedWords {}

impl fmt::Debug for SharedWords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0[..], f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_slab() {
        let a: SharedWords = vec![1, 2, 3].into();
        let b = a.clone();
        assert!(SharedWords::same_slab(&a, &b));
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn equality_compares_contents_across_slabs() {
        let a: SharedWords = vec![7, 8].into();
        let b: SharedWords = vec![7, 8].into();
        assert!(!SharedWords::same_slab(&a, &b));
        assert_eq!(a, b);
        let c: SharedWords = vec![7, 9].into();
        assert_ne!(a, c);
    }

    #[test]
    fn empty_buffer() {
        let e = SharedWords::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
