//! Bit arrays backing the object-map and reference-map.
//!
//! The contents of a bunch are described by two bit arrays (paper,
//! Section 8): the *object-map*, whose set bits mark the addresses at which
//! objects start, and the *reference-map*, whose set bits mark the words that
//! hold pointers. Both are one bit per word of the described range.

/// A fixed-capacity bit array indexed by word offset.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap covering `len` words, all clear.
    pub fn new(len: usize) -> Self {
        Bitmap {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of word slots covered by the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap covers zero words.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn set(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds {}",
            self.len
        );
        self.bits[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Clears the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds {}",
            self.len
        );
        self.bits[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Returns the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds {}",
            self.len
        );
        self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.bits.fill(0);
    }

    /// Clears every bit in `start..end` word-parallel: the interior of the
    /// range is zeroed a whole map word at a time, only the two boundary
    /// words are masked.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds the bitmap length.
    pub fn clear_range(&mut self, start: usize, end: usize) {
        assert!(
            end <= self.len,
            "bitmap range end {end} out of bounds {}",
            self.len
        );
        if start >= end {
            return;
        }
        let (sw, ew) = (start / 64, (end - 1) / 64);
        let head = u64::MAX << (start % 64);
        let tail = u64::MAX >> (63 - (end - 1) % 64);
        if sw == ew {
            self.bits[sw] &= !(head & tail);
            return;
        }
        self.bits[sw] &= !head;
        self.bits[sw + 1..ew].fill(0);
        self.bits[ew] &= !tail;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(move |(wi, &w)| {
            BitIter {
                word: w,
                base: wi * 64,
            }
            .filter(move |&i| i < self.len)
        })
    }

    /// Iterates over the indices of set bits in `start..end`, ascending.
    ///
    /// This is the word-parallel scan the collector's hot loops use: the
    /// first and last words of the range are masked once, then whole 64-bit
    /// map words are consumed with trailing-zeros iteration (`w &= w - 1`),
    /// so a sparse reference map costs one test per *word*, not per slot.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds the bitmap length.
    pub fn ones_in(&self, start: usize, end: usize) -> OnesIn<'_> {
        assert!(
            end <= self.len,
            "bitmap range end {end} out of bounds {}",
            self.len
        );
        let start = start.min(end);
        let wi = start / 64;
        let first = if start >= end {
            0
        } else {
            // Mask off bits below `start` in the first word; bits at or
            // past `end` are masked in the iterator when the word is the
            // range's last.
            self.bits[wi] & (u64::MAX << (start % 64))
        };
        OnesIn {
            bits: &self.bits,
            word: first,
            wi,
            end,
        }
    }

    /// Index of the first set bit at or after `from`, if any.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut wi = from / 64;
        let mut w = self.bits[wi] & (u64::MAX << (from % 64));
        loop {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                return (idx < self.len).then_some(idx);
            }
            wi += 1;
            if wi == self.bits.len() {
                return None;
            }
            w = self.bits[wi];
        }
    }
}

impl core::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bitmap[{}; ones=", self.len)?;
        f.debug_list().entries(self.iter_ones()).finish()?;
        write!(f, "]")
    }
}

/// Word-parallel iterator over set bits in a half-open range.
/// See [`Bitmap::ones_in`].
pub struct OnesIn<'a> {
    bits: &'a [u64],
    /// Remaining bits of the word currently being consumed.
    word: u64,
    /// Index of that word in `bits`.
    wi: usize,
    /// Exclusive upper bound (bit index).
    end: usize,
}

impl Iterator for OnesIn<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let idx = self.wi * 64 + self.word.trailing_zeros() as usize;
                if idx >= self.end {
                    self.word = 0;
                    return None;
                }
                self.word &= self.word - 1;
                return Some(idx);
            }
            self.wi += 1;
            if self.wi * 64 >= self.end || self.wi >= self.bits.len() {
                return None;
            }
            self.word = self.bits[self.wi];
        }
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = Bitmap::new(200);
        for i in [3usize, 64, 65, 199] {
            b.set(i);
        }
        let ones: Vec<_> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn next_one_scans_forward() {
        let mut b = Bitmap::new(300);
        b.set(5);
        b.set(70);
        b.set(299);
        assert_eq!(b.next_one(0), Some(5));
        assert_eq!(b.next_one(5), Some(5));
        assert_eq!(b.next_one(6), Some(70));
        assert_eq!(b.next_one(71), Some(299));
        assert_eq!(b.next_one(300), None);
    }

    #[test]
    fn clear_all_resets() {
        let mut b = Bitmap::new(64);
        b.set(1);
        b.set(33);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        Bitmap::new(8).set(8);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.next_one(0), None);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn clear_range_masks_boundaries() {
        let mut b = Bitmap::new(300);
        for i in 0..300 {
            b.set(i);
        }
        b.clear_range(5, 164);
        for i in 0..300 {
            assert_eq!(b.get(i), !(5..164).contains(&i), "bit {i}");
        }
        b.clear_range(3, 3); // empty range: no-op
        assert!(b.get(3));
        let mut w = Bitmap::new(64);
        w.set(10);
        w.set(20);
        w.clear_range(15, 25); // single-word range
        assert!(w.get(10) && !w.get(20));
    }

    #[test]
    fn ones_in_masks_both_ends() {
        let mut b = Bitmap::new(300);
        for i in [0usize, 5, 63, 64, 100, 163, 164, 299] {
            b.set(i);
        }
        let got: Vec<_> = b.ones_in(5, 164).collect();
        assert_eq!(got, vec![5, 63, 64, 100, 163]);
        assert_eq!(b.ones_in(0, 300).count(), 8);
        assert_eq!(b.ones_in(6, 6).count(), 0, "empty range");
        assert_eq!(b.ones_in(65, 100).count(), 0, "range with no ones");
    }

    proptest! {
        #[test]
        fn ones_in_matches_scalar_scan(
            ones in proptest::collection::btree_set(0usize..512, 0..128),
            start in 0usize..512,
            span in 0usize..512,
        ) {
            let mut b = Bitmap::new(512);
            for &i in &ones {
                b.set(i);
            }
            let end = (start + span).min(512);
            let start = start.min(end);
            // The scalar scanner `ref_fields` used before the word-parallel
            // rewrite: one `get` per slot.
            let want: Vec<_> = (start..end).filter(|&i| b.get(i)).collect();
            let got: Vec<_> = b.ones_in(start, end).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn model_matches_hashset(ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..200)) {
            let mut b = Bitmap::new(500);
            let mut model = std::collections::BTreeSet::new();
            for (idx, set) in ops {
                if set {
                    b.set(idx);
                    model.insert(idx);
                } else {
                    b.clear(idx);
                    model.remove(&idx);
                }
            }
            prop_assert_eq!(b.count_ones(), model.len());
            let got: Vec<_> = b.iter_ones().collect();
            let want: Vec<_> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn next_one_agrees_with_iter(ones in proptest::collection::btree_set(0usize..256, 0..64), from in 0usize..260) {
            let mut b = Bitmap::new(256);
            for &i in &ones {
                b.set(i);
            }
            let expect = ones.iter().copied().find(|&i| i >= from);
            prop_assert_eq!(b.next_one(from), expect);
        }
    }
}
