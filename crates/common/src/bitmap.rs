//! Bit arrays backing the object-map and reference-map.
//!
//! The contents of a bunch are described by two bit arrays (paper,
//! Section 8): the *object-map*, whose set bits mark the addresses at which
//! objects start, and the *reference-map*, whose set bits mark the words that
//! hold pointers. Both are one bit per word of the described range.

/// A fixed-capacity bit array indexed by word offset.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap covering `len` words, all clear.
    pub fn new(len: usize) -> Self {
        Bitmap {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of word slots covered by the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap covers zero words.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn set(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds {}",
            self.len
        );
        self.bits[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Clears the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds {}",
            self.len
        );
        self.bits[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Returns the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of bounds {}",
            self.len
        );
        self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.bits.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(move |(wi, &w)| {
            BitIter {
                word: w,
                base: wi * 64,
            }
            .filter(move |&i| i < self.len)
        })
    }

    /// Index of the first set bit at or after `from`, if any.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut wi = from / 64;
        let mut w = self.bits[wi] & (u64::MAX << (from % 64));
        loop {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                return (idx < self.len).then_some(idx);
            }
            wi += 1;
            if wi == self.bits.len() {
                return None;
            }
            w = self.bits[wi];
        }
    }
}

impl core::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bitmap[{}; ones=", self.len)?;
        f.debug_list().entries(self.iter_ones()).finish()?;
        write!(f, "]")
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = Bitmap::new(200);
        for i in [3usize, 64, 65, 199] {
            b.set(i);
        }
        let ones: Vec<_> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn next_one_scans_forward() {
        let mut b = Bitmap::new(300);
        b.set(5);
        b.set(70);
        b.set(299);
        assert_eq!(b.next_one(0), Some(5));
        assert_eq!(b.next_one(5), Some(5));
        assert_eq!(b.next_one(6), Some(70));
        assert_eq!(b.next_one(71), Some(299));
        assert_eq!(b.next_one(300), None);
    }

    #[test]
    fn clear_all_resets() {
        let mut b = Bitmap::new(64);
        b.set(1);
        b.set(33);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        Bitmap::new(8).set(8);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.next_one(0), None);
        assert_eq!(b.iter_ones().count(), 0);
    }

    proptest! {
        #[test]
        fn model_matches_hashset(ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..200)) {
            let mut b = Bitmap::new(500);
            let mut model = std::collections::BTreeSet::new();
            for (idx, set) in ops {
                if set {
                    b.set(idx);
                    model.insert(idx);
                } else {
                    b.clear(idx);
                    model.remove(&idx);
                }
            }
            prop_assert_eq!(b.count_ones(), model.len());
            let got: Vec<_> = b.iter_ones().collect();
            let want: Vec<_> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn next_one_agrees_with_iter(ones in proptest::collection::btree_set(0usize..256, 0..64), from in 0usize..260) {
            let mut b = Bitmap::new(256);
            for &i in &ones {
                b.set(i);
            }
            let expect = ones.iter().copied().find(|&i| i >= from);
            prop_assert_eq!(b.next_one(from), expect);
        }
    }
}
