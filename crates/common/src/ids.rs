//! Typed identifiers used across the workspace.
//!
//! Every distributed entity in BMX has a small, copyable identifier. Using
//! newtypes (rather than bare integers) makes it a type error to pass, say, a
//! bunch id where a node id is expected — a cheap form of protocol hygiene
//! that matters in code shuffling four different id spaces around.

use core::fmt;

/// Identifier of a node (workstation) in the loosely coupled network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifier of a bunch: a logical group of segments with an owner and
/// protection attributes (paper, Section 2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BunchId(pub u32);

/// Identifier of a segment: a constant-size run of contiguous virtual-memory
/// pages with a globally unique, non-overlapping address range.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SegmentId(pub u64);

/// Stable object identifier, assigned at allocation and stored in the object
/// header.
///
/// The paper's prototype keys the DSM token directory by address and relies
/// on forwarding pointers across relocations; we key it by `Oid` instead (see
/// DESIGN.md, "Substitutions"). Mutator-visible references remain raw
/// [`Addr`](crate::Addr)esses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Oid(pub u64);

/// Per-channel FIFO sequence number for point-to-point messages.
///
/// Reachability tables are idempotent but must be consumed in FIFO order
/// (paper, Section 6.1); numbering the messages on each point-to-point
/// channel is how that order is enforced.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct MsgSeq(pub u64);

impl MsgSeq {
    /// Returns the next sequence number, advancing `self`.
    pub fn bump(&mut self) -> MsgSeq {
        self.0 += 1;
        MsgSeq(self.0)
    }
}

/// Monotonic epoch of a bunch-collection on one node.
///
/// Each run of the bunch garbage collector on a replica bumps the replica's
/// epoch; stub tables and scions are stamped with it so the scion cleaner can
/// discard stale tables (DESIGN.md, Section 5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Epoch(pub u64);

impl Epoch {
    /// Advances to the next epoch and returns it.
    pub fn bump(&mut self) -> Epoch {
        self.0 += 1;
        *self
    }
}

macro_rules! impl_display {
    ($ty:ident, $prefix:expr) => {
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_display!(NodeId, "N");
impl_display!(BunchId, "B");
impl_display!(SegmentId, "S");
impl_display!(Oid, "O");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_style_prefixes() {
        assert_eq!(NodeId(1).to_string(), "N1");
        assert_eq!(BunchId(2).to_string(), "B2");
        assert_eq!(SegmentId(3).to_string(), "S3");
        assert_eq!(Oid(4).to_string(), "O4");
    }

    #[test]
    fn msg_seq_bump_is_monotonic() {
        let mut s = MsgSeq::default();
        let a = s.bump();
        let b = s.bump();
        assert!(a < b);
        assert_eq!(b, MsgSeq(2));
    }

    #[test]
    fn epoch_bump_returns_new_value() {
        let mut e = Epoch::default();
        assert_eq!(e.bump(), Epoch(1));
        assert_eq!(e, Epoch(1));
    }

    #[test]
    fn ids_order_by_inner_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(Oid(9) > Oid(3));
    }
}
