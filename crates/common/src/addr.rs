//! Addresses in the 64-bit single address space.
//!
//! BMX offers a single 64-bit address space spanning every node of the
//! network including secondary storage (paper, Section 2.1). An object *is*
//! its address; references are ordinary pointers. The workspace represents
//! such pointers as [`Addr`], a transparent `u64` with word-granular
//! arithmetic helpers.
//!
//! The paper's object/reference maps use one bit per 4-byte range; this
//! reproduction is uniformly 64-bit, so the word size is 8 bytes and all
//! object sizes and field offsets are measured in words.

use core::fmt;

/// Size in bytes of one machine word in the simulated address space.
pub const WORD_BYTES: u64 = 8;

/// An address in the global 64-bit single address space.
///
/// `Addr(0)` is the null reference, never a valid object location; the
/// segment server starts handing out ranges well above zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null reference.
    pub const NULL: Addr = Addr(0);

    /// Returns `true` if this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address `n` words past `self`.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow, which indicates a corrupted pointer
    /// rather than a recoverable condition.
    #[inline]
    pub fn add_words(self, n: u64) -> Addr {
        Addr(
            self.0
                .checked_add(n.checked_mul(WORD_BYTES).expect("word count overflow"))
                .expect("address overflow"),
        )
    }

    /// Returns the address `n` words before `self`.
    ///
    /// # Panics
    ///
    /// Panics on underflow (corrupted pointer).
    #[inline]
    pub fn sub_words(self, n: u64) -> Addr {
        Addr(
            self.0
                .checked_sub(n * WORD_BYTES)
                .expect("address underflow"),
        )
    }

    /// Distance from `base` to `self` in whole words.
    ///
    /// # Panics
    ///
    /// Panics if `self < base` or if the distance is not word-aligned.
    #[inline]
    pub fn words_from(self, base: Addr) -> u64 {
        let delta = self.0.checked_sub(base.0).expect("address before base");
        assert!(delta.is_multiple_of(WORD_BYTES), "unaligned address delta");
        delta / WORD_BYTES
    }

    /// Returns `true` if the address is word-aligned.
    #[inline]
    pub fn is_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Returns `true` if `self` lies in `[start, start + len_words)`.
    #[inline]
    pub fn in_range(self, start: Addr, len_words: u64) -> bool {
        self >= start && self < start.add_words(len_words)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(8).is_null());
    }

    #[test]
    fn word_arithmetic_round_trips() {
        let base = Addr(0x1000);
        let a = base.add_words(5);
        assert_eq!(a, Addr(0x1000 + 40));
        assert_eq!(a.words_from(base), 5);
        assert_eq!(a.sub_words(5), base);
    }

    #[test]
    fn in_range_is_half_open() {
        let base = Addr(0x100);
        assert!(base.in_range(base, 1));
        assert!(base.add_words(3).in_range(base, 4));
        assert!(!base.add_words(4).in_range(base, 4));
        assert!(!Addr(0x98).in_range(base, 4));
    }

    #[test]
    fn alignment_checks() {
        assert!(Addr(16).is_aligned());
        assert!(!Addr(17).is_aligned());
    }

    #[test]
    #[should_panic(expected = "address before base")]
    fn words_from_panics_when_reversed() {
        Addr(8).words_from(Addr(16));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn words_from_panics_on_unaligned_delta() {
        Addr(0x103).words_from(Addr(0x100));
    }
}
