//! Instrumentation counters.
//!
//! The paper's claims are about *quantities* — messages sent on behalf of the
//! collector, tokens the collector acquired (which must be zero), replicas
//! invalidated, pause durations. Every substrate increments the counters
//! defined here, and the experiment harness in `bmx-bench` reads them back to
//! regenerate the evaluation tables.
//!
//! Storage is a shared block of relaxed atomics ([`NodeStats`] is a thin
//! shim over it): the cluster's counters and the `bmx-metrics` registry
//! observe the *same* cells, so there is exactly one counting mechanism.
//! [`NodeStats::clone`] deliberately produces a **detached** value copy —
//! the `let base = stats.clone(); …; stats.since(&base)` baseline pattern
//! used throughout the experiments keeps its value semantics — while
//! [`NodeStats::handle`] yields a live alias for exposition layers that
//! want to watch the counters move.

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything the experiments count, per node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum StatKind {
    /// Point-to-point messages handed to the network.
    MessagesSent,
    /// Messages dropped by the (unreliable) network.
    MessagesDropped,
    /// Payload bytes handed to the network.
    BytesSent,
    /// Read-token acquisitions performed by mutators.
    MutatorReadAcquires,
    /// Write-token acquisitions performed by mutators.
    MutatorWriteAcquires,
    /// Token acquisitions performed by the garbage collector.
    ///
    /// The central claim of the paper is that this counter stays at zero:
    /// "In any circumstance, the garbage collector acquires neither a read
    /// nor a write token" (Section 10).
    GcTokenAcquires,
    /// Read replicas invalidated by write-token transfers.
    Invalidations,
    /// Read replicas invalidated *on behalf of the collector* (only a
    /// token-acquiring baseline collector ever increments this).
    GcInvalidations,
    /// Objects copied from from-space to to-space by a collector.
    ObjectsCopied,
    /// Words copied from from-space to to-space by a collector.
    WordsCopied,
    /// Live objects scanned in place (non-owned replicas).
    ObjectsScanned,
    /// Scion-messages sent (inter-bunch SSP creation across nodes).
    ScionMessages,
    /// Reachability-table messages sent to scion cleaners.
    StubTableMessages,
    /// Relocation records piggy-backed onto consistency-protocol messages.
    PiggybackedRelocations,
    /// Explicit (non-piggy-backed) relocation messages sent.
    ExplicitRelocationMessages,
    /// Times a mutator was blocked waiting on collector work.
    MutatorStalls,
    /// Objects reclaimed (their words returned to a free space).
    ObjectsReclaimed,
    /// Words reclaimed.
    WordsReclaimed,
    /// Scions removed by the scion cleaner.
    ScionsCleaned,
    /// Entering ownerPtrs removed by the scion cleaner.
    OwnerPtrsCleaned,
    /// Write-barrier slow paths taken (inter-bunch reference creation).
    BarrierSlowPaths,
    /// Write-barrier fast paths taken.
    BarrierFastPaths,
    /// RVM log records written.
    RvmLogRecords,
    /// RVM bytes logged.
    RvmBytesLogged,
    /// Envelopes the DSM layer exchanged on behalf of applications. One
    /// protocol round emits at most one envelope per destination; the
    /// constituent messages inside them are counted by
    /// [`StatKind::DsmLogicalMessages`].
    DsmProtocolMessages,
    /// Constituent DSM protocol messages before envelope coalescing
    /// (requests, grants, invalidations, acks, registrations).
    DsmLogicalMessages,
    /// Words physically copied when capturing a grant's object image.
    /// Refcounted clones of an already-captured image (fault duplicates,
    /// re-enqueues) cost nothing and are deliberately not counted.
    ImageWordsCopied,
    /// Background (non-piggy-backed) GC messages.
    BackgroundGcMessages,
    /// Reachability reports re-sent by the automatic retry daemon.
    RetryResends,
    /// Messages delivered more than once (duplication faults); the handlers
    /// are idempotent, so these are counted, not suppressed.
    DuplicateDeliveries,
    /// Network partitions that healed while this node was on one side.
    PartitionsHealed,
    /// Times this node came back from a crash.
    NodeRestarts,
    /// Ticks between a report's first publication and the retry daemon
    /// confirming every destination applied it — summed over reports that
    /// needed at least one resend.
    RecoveryLatencyTicks,
    /// Reports the retry daemon gave up on (budget exhausted; the next
    /// collection's report supersedes them).
    RetryBudgetExhausted,
    /// Volatile-state wipes performed at an amnesia crash (memory image,
    /// directory, DSM caches, cleaner tables, retry timers all discarded).
    AmnesiaWipes,
    /// Crash-recovery pipelines run to completion (RVM replay + rejoin
    /// handshake + scion regeneration).
    RecoveriesCompleted,
    /// Objects whose ownership was orphaned by an amnesia crash and
    /// reassigned to a surviving replica holder during the rejoin handshake.
    RejoinOrphansAdopted,
}

impl StatKind {
    /// All counter kinds, for iteration in reports.
    pub const ALL: [StatKind; 37] = [
        StatKind::MessagesSent,
        StatKind::MessagesDropped,
        StatKind::BytesSent,
        StatKind::MutatorReadAcquires,
        StatKind::MutatorWriteAcquires,
        StatKind::GcTokenAcquires,
        StatKind::Invalidations,
        StatKind::GcInvalidations,
        StatKind::ObjectsCopied,
        StatKind::WordsCopied,
        StatKind::ObjectsScanned,
        StatKind::ScionMessages,
        StatKind::StubTableMessages,
        StatKind::PiggybackedRelocations,
        StatKind::ExplicitRelocationMessages,
        StatKind::MutatorStalls,
        StatKind::ObjectsReclaimed,
        StatKind::WordsReclaimed,
        StatKind::ScionsCleaned,
        StatKind::OwnerPtrsCleaned,
        StatKind::BarrierSlowPaths,
        StatKind::BarrierFastPaths,
        StatKind::RvmLogRecords,
        StatKind::RvmBytesLogged,
        StatKind::DsmProtocolMessages,
        StatKind::DsmLogicalMessages,
        StatKind::ImageWordsCopied,
        StatKind::BackgroundGcMessages,
        StatKind::RetryResends,
        StatKind::DuplicateDeliveries,
        StatKind::PartitionsHealed,
        StatKind::NodeRestarts,
        StatKind::RecoveryLatencyTicks,
        StatKind::RetryBudgetExhausted,
        StatKind::AmnesiaWipes,
        StatKind::RecoveriesCompleted,
        StatKind::RejoinOrphansAdopted,
    ];

    const COUNT: usize = Self::ALL.len();
}

/// A single monotonically increasing counter.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Counter(pub u64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Increments the counter by one.
    #[inline]
    pub fn bump(&mut self) {
        self.0 += 1;
    }
}

/// The shared cell block behind a [`NodeStats`]. All accesses are relaxed:
/// the cells carry no synchronization duties, they are observational only.
struct StatCells {
    cells: [AtomicU64; StatKind::COUNT],
}

impl StatCells {
    fn zeroed() -> Self {
        StatCells {
            cells: core::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The full counter set of one node.
pub struct NodeStats {
    cells: Arc<StatCells>,
}

impl Clone for NodeStats {
    /// A **detached** value copy: the clone stops tracking the original.
    /// This is what the pervasive `let base = stats.clone()` baseline
    /// pattern relies on; use [`NodeStats::handle`] for a live alias.
    fn clone(&self) -> Self {
        let out = NodeStats::new();
        for (i, c) in self.cells.cells.iter().enumerate() {
            out.cells.cells[i].store(c.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out
    }
}

impl Default for NodeStats {
    fn default() -> Self {
        NodeStats {
            cells: Arc::new(StatCells::zeroed()),
        }
    }
}

impl NodeStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A live alias sharing this counter set's cells: bumps through either
    /// are visible to both. Exposition layers (the metrics registry, the
    /// `bmx_top` dashboard) bind to handles so they read the cluster's real
    /// counters rather than a stale copy.
    pub fn handle(&self) -> NodeStats {
        NodeStats {
            cells: Arc::clone(&self.cells),
        }
    }

    /// Whether `other` observes the same underlying cells as `self`.
    pub fn is_same_cells(&self, other: &NodeStats) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }

    /// Adds `n` to the counter of the given kind.
    #[inline]
    pub fn add(&mut self, kind: StatKind, n: u64) {
        self.cells.cells[kind as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter of the given kind by one.
    #[inline]
    pub fn bump(&mut self, kind: StatKind) {
        self.cells.cells[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    #[inline]
    pub fn get(&self, kind: StatKind) -> u64 {
        self.cells.cells[kind as usize].load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        for c in &self.cells.cells {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Returns the element-wise sum of `self` and `other` (detached).
    pub fn merged(&self, other: &NodeStats) -> NodeStats {
        let out = self.clone();
        for (i, src) in other.cells.cells.iter().enumerate() {
            out.cells.cells[i].fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out
    }

    /// Returns the element-wise difference `self - baseline` (detached).
    ///
    /// # Panics
    ///
    /// Panics if any counter in `baseline` exceeds the one in `self`
    /// (counters are monotonic, so this indicates misuse).
    pub fn since(&self, baseline: &NodeStats) -> NodeStats {
        let out = NodeStats::new();
        for (i, kind) in StatKind::ALL.iter().enumerate() {
            let now = self.cells.cells[i].load(Ordering::Relaxed);
            let then = baseline.cells.cells[i].load(Ordering::Relaxed);
            assert!(now >= then, "counter {kind:?} went backwards");
            out.cells.cells[i].store(now - then, Ordering::Relaxed);
        }
        out
    }

    /// Iterates over `(kind, value)` pairs with non-zero values.
    pub fn nonzero(&self) -> impl Iterator<Item = (StatKind, u64)> + '_ {
        StatKind::ALL
            .iter()
            .map(move |&k| (k, self.get(k)))
            .filter(|&(_, v)| v != 0)
    }
}

impl fmt::Debug for NodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.nonzero()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = NodeStats::new();
        for k in StatKind::ALL {
            assert_eq!(s.get(k), 0);
        }
    }

    #[test]
    fn bump_and_add() {
        let mut s = NodeStats::new();
        s.bump(StatKind::MessagesSent);
        s.add(StatKind::BytesSent, 120);
        assert_eq!(s.get(StatKind::MessagesSent), 1);
        assert_eq!(s.get(StatKind::BytesSent), 120);
        assert_eq!(s.get(StatKind::Invalidations), 0);
    }

    #[test]
    fn merged_sums_elementwise() {
        let mut a = NodeStats::new();
        let mut b = NodeStats::new();
        a.add(StatKind::ObjectsCopied, 3);
        b.add(StatKind::ObjectsCopied, 4);
        b.bump(StatKind::Invalidations);
        let m = a.merged(&b);
        assert_eq!(m.get(StatKind::ObjectsCopied), 7);
        assert_eq!(m.get(StatKind::Invalidations), 1);
    }

    #[test]
    fn since_subtracts() {
        let mut base = NodeStats::new();
        base.add(StatKind::MessagesSent, 10);
        let mut now = base.clone();
        now.add(StatKind::MessagesSent, 5);
        assert_eq!(now.since(&base).get(StatKind::MessagesSent), 5);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn since_rejects_regression() {
        let mut base = NodeStats::new();
        base.add(StatKind::MessagesSent, 10);
        NodeStats::new().since(&base);
    }

    #[test]
    fn nonzero_lists_only_touched_counters() {
        let mut s = NodeStats::new();
        s.bump(StatKind::ScionMessages);
        let v: Vec<_> = s.nonzero().collect();
        assert_eq!(v, vec![(StatKind::ScionMessages, 1)]);
    }

    #[test]
    fn clone_detaches_but_handle_aliases() {
        let mut live = NodeStats::new();
        live.bump(StatKind::MessagesSent);
        let snapshot = live.clone();
        let mut alias = live.handle();
        assert!(live.is_same_cells(&alias));
        assert!(!live.is_same_cells(&snapshot));
        alias.add(StatKind::MessagesSent, 9);
        assert_eq!(live.get(StatKind::MessagesSent), 10, "alias writes through");
        assert_eq!(
            snapshot.get(StatKind::MessagesSent),
            1,
            "the clone stays a point-in-time copy"
        );
        assert_eq!(live.since(&snapshot).get(StatKind::MessagesSent), 9);
    }

    #[test]
    fn all_kinds_are_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for k in StatKind::ALL {
            assert!(seen.insert(k as usize), "duplicate index for {k:?}");
        }
        assert_eq!(seen.len(), StatKind::COUNT);
    }
}
