//! Instrumentation counters.
//!
//! The paper's claims are about *quantities* — messages sent on behalf of the
//! collector, tokens the collector acquired (which must be zero), replicas
//! invalidated, pause durations. Every substrate increments the counters
//! defined here, and the experiment harness in `bmx-bench` reads them back to
//! regenerate the evaluation tables.

use core::fmt;

/// Everything the experiments count, per node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum StatKind {
    /// Point-to-point messages handed to the network.
    MessagesSent,
    /// Messages dropped by the (unreliable) network.
    MessagesDropped,
    /// Payload bytes handed to the network.
    BytesSent,
    /// Read-token acquisitions performed by mutators.
    MutatorReadAcquires,
    /// Write-token acquisitions performed by mutators.
    MutatorWriteAcquires,
    /// Token acquisitions performed by the garbage collector.
    ///
    /// The central claim of the paper is that this counter stays at zero:
    /// "In any circumstance, the garbage collector acquires neither a read
    /// nor a write token" (Section 10).
    GcTokenAcquires,
    /// Read replicas invalidated by write-token transfers.
    Invalidations,
    /// Read replicas invalidated *on behalf of the collector* (only a
    /// token-acquiring baseline collector ever increments this).
    GcInvalidations,
    /// Objects copied from from-space to to-space by a collector.
    ObjectsCopied,
    /// Words copied from from-space to to-space by a collector.
    WordsCopied,
    /// Live objects scanned in place (non-owned replicas).
    ObjectsScanned,
    /// Scion-messages sent (inter-bunch SSP creation across nodes).
    ScionMessages,
    /// Reachability-table messages sent to scion cleaners.
    StubTableMessages,
    /// Relocation records piggy-backed onto consistency-protocol messages.
    PiggybackedRelocations,
    /// Explicit (non-piggy-backed) relocation messages sent.
    ExplicitRelocationMessages,
    /// Times a mutator was blocked waiting on collector work.
    MutatorStalls,
    /// Objects reclaimed (their words returned to a free space).
    ObjectsReclaimed,
    /// Words reclaimed.
    WordsReclaimed,
    /// Scions removed by the scion cleaner.
    ScionsCleaned,
    /// Entering ownerPtrs removed by the scion cleaner.
    OwnerPtrsCleaned,
    /// Write-barrier slow paths taken (inter-bunch reference creation).
    BarrierSlowPaths,
    /// Write-barrier fast paths taken.
    BarrierFastPaths,
    /// RVM log records written.
    RvmLogRecords,
    /// RVM bytes logged.
    RvmBytesLogged,
    /// Messages the DSM layer exchanged on behalf of applications.
    DsmProtocolMessages,
    /// Background (non-piggy-backed) GC messages.
    BackgroundGcMessages,
    /// Reachability reports re-sent by the automatic retry daemon.
    RetryResends,
    /// Messages delivered more than once (duplication faults); the handlers
    /// are idempotent, so these are counted, not suppressed.
    DuplicateDeliveries,
    /// Network partitions that healed while this node was on one side.
    PartitionsHealed,
    /// Times this node came back from a crash.
    NodeRestarts,
    /// Ticks between a report's first publication and the retry daemon
    /// confirming every destination applied it — summed over reports that
    /// needed at least one resend.
    RecoveryLatencyTicks,
    /// Reports the retry daemon gave up on (budget exhausted; the next
    /// collection's report supersedes them).
    RetryBudgetExhausted,
    /// Volatile-state wipes performed at an amnesia crash (memory image,
    /// directory, DSM caches, cleaner tables, retry timers all discarded).
    AmnesiaWipes,
    /// Crash-recovery pipelines run to completion (RVM replay + rejoin
    /// handshake + scion regeneration).
    RecoveriesCompleted,
    /// Objects whose ownership was orphaned by an amnesia crash and
    /// reassigned to a surviving replica holder during the rejoin handshake.
    RejoinOrphansAdopted,
}

impl StatKind {
    /// All counter kinds, for iteration in reports.
    pub const ALL: [StatKind; 35] = [
        StatKind::MessagesSent,
        StatKind::MessagesDropped,
        StatKind::BytesSent,
        StatKind::MutatorReadAcquires,
        StatKind::MutatorWriteAcquires,
        StatKind::GcTokenAcquires,
        StatKind::Invalidations,
        StatKind::GcInvalidations,
        StatKind::ObjectsCopied,
        StatKind::WordsCopied,
        StatKind::ObjectsScanned,
        StatKind::ScionMessages,
        StatKind::StubTableMessages,
        StatKind::PiggybackedRelocations,
        StatKind::ExplicitRelocationMessages,
        StatKind::MutatorStalls,
        StatKind::ObjectsReclaimed,
        StatKind::WordsReclaimed,
        StatKind::ScionsCleaned,
        StatKind::OwnerPtrsCleaned,
        StatKind::BarrierSlowPaths,
        StatKind::BarrierFastPaths,
        StatKind::RvmLogRecords,
        StatKind::RvmBytesLogged,
        StatKind::DsmProtocolMessages,
        StatKind::BackgroundGcMessages,
        StatKind::RetryResends,
        StatKind::DuplicateDeliveries,
        StatKind::PartitionsHealed,
        StatKind::NodeRestarts,
        StatKind::RecoveryLatencyTicks,
        StatKind::RetryBudgetExhausted,
        StatKind::AmnesiaWipes,
        StatKind::RecoveriesCompleted,
        StatKind::RejoinOrphansAdopted,
    ];

    const COUNT: usize = Self::ALL.len();
}

/// A single monotonically increasing counter.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Counter(pub u64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Increments the counter by one.
    #[inline]
    pub fn bump(&mut self) {
        self.0 += 1;
    }
}

/// The full counter set of one node.
#[derive(Clone)]
pub struct NodeStats {
    counters: [Counter; StatKind::COUNT],
}

impl Default for NodeStats {
    fn default() -> Self {
        NodeStats {
            counters: [Counter::default(); StatKind::COUNT],
        }
    }
}

impl NodeStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter of the given kind.
    #[inline]
    pub fn add(&mut self, kind: StatKind, n: u64) {
        self.counters[kind as usize].add(n);
    }

    /// Increments the counter of the given kind by one.
    #[inline]
    pub fn bump(&mut self, kind: StatKind) {
        self.counters[kind as usize].bump();
    }

    /// Reads a counter.
    #[inline]
    pub fn get(&self, kind: StatKind) -> u64 {
        self.counters[kind as usize].0
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.counters = [Counter::default(); StatKind::COUNT];
    }

    /// Returns the element-wise sum of `self` and `other`.
    pub fn merged(&self, other: &NodeStats) -> NodeStats {
        let mut out = self.clone();
        for (dst, src) in out.counters.iter_mut().zip(other.counters.iter()) {
            dst.add(src.0);
        }
        out
    }

    /// Returns the element-wise difference `self - baseline`.
    ///
    /// # Panics
    ///
    /// Panics if any counter in `baseline` exceeds the one in `self`
    /// (counters are monotonic, so this indicates misuse).
    pub fn since(&self, baseline: &NodeStats) -> NodeStats {
        let mut out = NodeStats::new();
        for (i, kind) in StatKind::ALL.iter().enumerate() {
            let now = self.counters[i].0;
            let then = baseline.counters[i].0;
            assert!(now >= then, "counter {kind:?} went backwards");
            out.counters[i] = Counter(now - then);
        }
        out
    }

    /// Iterates over `(kind, value)` pairs with non-zero values.
    pub fn nonzero(&self) -> impl Iterator<Item = (StatKind, u64)> + '_ {
        StatKind::ALL
            .iter()
            .map(move |&k| (k, self.get(k)))
            .filter(|&(_, v)| v != 0)
    }
}

impl fmt::Debug for NodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.nonzero()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = NodeStats::new();
        for k in StatKind::ALL {
            assert_eq!(s.get(k), 0);
        }
    }

    #[test]
    fn bump_and_add() {
        let mut s = NodeStats::new();
        s.bump(StatKind::MessagesSent);
        s.add(StatKind::BytesSent, 120);
        assert_eq!(s.get(StatKind::MessagesSent), 1);
        assert_eq!(s.get(StatKind::BytesSent), 120);
        assert_eq!(s.get(StatKind::Invalidations), 0);
    }

    #[test]
    fn merged_sums_elementwise() {
        let mut a = NodeStats::new();
        let mut b = NodeStats::new();
        a.add(StatKind::ObjectsCopied, 3);
        b.add(StatKind::ObjectsCopied, 4);
        b.bump(StatKind::Invalidations);
        let m = a.merged(&b);
        assert_eq!(m.get(StatKind::ObjectsCopied), 7);
        assert_eq!(m.get(StatKind::Invalidations), 1);
    }

    #[test]
    fn since_subtracts() {
        let mut base = NodeStats::new();
        base.add(StatKind::MessagesSent, 10);
        let mut now = base.clone();
        now.add(StatKind::MessagesSent, 5);
        assert_eq!(now.since(&base).get(StatKind::MessagesSent), 5);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn since_rejects_regression() {
        let mut base = NodeStats::new();
        base.add(StatKind::MessagesSent, 10);
        NodeStats::new().since(&base);
    }

    #[test]
    fn nonzero_lists_only_touched_counters() {
        let mut s = NodeStats::new();
        s.bump(StatKind::ScionMessages);
        let v: Vec<_> = s.nonzero().collect();
        assert_eq!(v, vec![(StatKind::ScionMessages, 1)]);
    }

    #[test]
    fn all_kinds_are_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for k in StatKind::ALL {
            assert!(seen.insert(k as usize), "duplicate index for {k:?}");
        }
        assert_eq!(seen.len(), StatKind::COUNT);
    }
}
