//! Shared primitives for the BMX reproduction.
//!
//! This crate hosts the vocabulary types used by every other crate in the
//! workspace: typed identifiers ([`ids`]), 64-bit single-address-space
//! addresses ([`addr`]), the bit arrays backing object-maps and
//! reference-maps ([`bitmap`]), instrumentation counters ([`stats`]), the
//! common error type ([`error`]) and a small deterministic RNG ([`rng`]).
//!
//! Nothing here knows about the network, the DSM protocol or the collector;
//! keeping these types dependency-free lets the substrate crates share them
//! without cycles.

pub mod addr;
pub mod bitmap;
pub mod error;
pub mod ids;
pub mod rng;
pub mod shared;
pub mod stats;

pub use addr::{Addr, WORD_BYTES};
pub use bitmap::Bitmap;
pub use error::{BmxError, Result};
pub use ids::{BunchId, Epoch, MsgSeq, NodeId, Oid, SegmentId};
pub use rng::SplitMix64;
pub use shared::SharedWords;
pub use stats::{Counter, NodeStats, StatKind};
