//! The workspace-wide error type.

use core::fmt;

use crate::{Addr, BunchId, NodeId, Oid, SegmentId};

/// Convenient result alias used throughout the workspace.
pub type Result<T> = core::result::Result<T, BmxError>;

/// Errors surfaced by the BMX substrates and the collector.
///
/// The set is deliberately closed and descriptive: callers in tests and
/// benches match on variants to assert *why* an operation failed, not just
/// that it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmxError {
    /// An address did not fall inside any segment mapped on the node.
    Unmapped { node: NodeId, addr: Addr },
    /// An address was expected to be an object start but the object-map says
    /// otherwise.
    NotAnObject { addr: Addr },
    /// A bunch is not known on / mapped at the given node.
    BunchUnmapped { node: NodeId, bunch: BunchId },
    /// A segment allocation failed (address space or bunch exhausted).
    SegmentExhausted { bunch: BunchId },
    /// Object allocation could not be satisfied from the current segment set.
    OutOfMemory { bunch: BunchId, words: u64 },
    /// The node attempted an access for which it holds no suitable token.
    NoToken { node: NodeId, oid: Oid },
    /// A token request could not be routed to an owner.
    OwnerUnknown { oid: Oid },
    /// A write barrier or field access went outside the target object.
    FieldOutOfBounds { addr: Addr, field: u64, size: u64 },
    /// The word written by `write_ref` is not marked as a pointer in the
    /// reference map (or vice versa for `write_word`).
    RefMapMismatch { addr: Addr, field: u64 },
    /// A recoverable-virtual-memory operation failed.
    Rvm(String),
    /// A node id was out of range for the cluster.
    NoSuchNode(NodeId),
    /// The segment is unknown to the node that was asked about it.
    NoSuchSegment(SegmentId),
    /// An operation that requires quiescence ran during an active collection.
    CollectorBusy { bunch: BunchId },
    /// A token acquire could not complete because a holder is inside a
    /// critical section (entry-consistency programs must release first).
    WouldBlock { oid: Oid },
    /// The bunch's protection attributes deny the attempted access.
    AccessDenied { bunch: BunchId, write: bool },
    /// The operation needed a node whose runtime failure domain is down
    /// (crashed driver or injected crash in the parallel runtime). The
    /// caller may retry once the supervisor has restarted the node.
    NodeDown { node: NodeId },
    /// Protocol violation detected at runtime (a bug, surfaced loudly).
    Protocol(String),
}

impl fmt::Display for BmxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmxError::Unmapped { node, addr } => {
                write!(f, "address {addr} is not mapped on node {node}")
            }
            BmxError::NotAnObject { addr } => {
                write!(f, "address {addr} is not an object start")
            }
            BmxError::BunchUnmapped { node, bunch } => {
                write!(f, "bunch {bunch} is not mapped on node {node}")
            }
            BmxError::SegmentExhausted { bunch } => {
                write!(f, "no segment space left in bunch {bunch}")
            }
            BmxError::OutOfMemory { bunch, words } => {
                write!(f, "cannot allocate {words} words in bunch {bunch}")
            }
            BmxError::NoToken { node, oid } => {
                write!(f, "node {node} holds no token for object {oid}")
            }
            BmxError::OwnerUnknown { oid } => {
                write!(f, "no route to the owner of object {oid}")
            }
            BmxError::FieldOutOfBounds { addr, field, size } => {
                write!(
                    f,
                    "field {field} out of bounds for object {addr} of {size} words"
                )
            }
            BmxError::RefMapMismatch { addr, field } => {
                write!(f, "reference-map mismatch at object {addr} field {field}")
            }
            BmxError::Rvm(msg) => write!(f, "rvm: {msg}"),
            BmxError::NoSuchNode(node) => write!(f, "no such node {node}"),
            BmxError::NoSuchSegment(seg) => write!(f, "no such segment {seg}"),
            BmxError::CollectorBusy { bunch } => {
                write!(f, "a collection of bunch {bunch} is in progress")
            }
            BmxError::WouldBlock { oid } => {
                write!(f, "acquire of {oid} would block on a held critical section")
            }
            BmxError::AccessDenied { bunch, write } => {
                let kind = if *write { "write" } else { "read" };
                write!(f, "{kind} access to bunch {bunch} denied by its protection")
            }
            BmxError::NodeDown { node } => {
                write!(f, "node {node} is down (failure domain crashed)")
            }
            BmxError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for BmxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BmxError::Unmapped {
            node: NodeId(2),
            addr: Addr(0x40),
        };
        assert_eq!(e.to_string(), "address @0x40 is not mapped on node N2");
        let e = BmxError::NoToken {
            node: NodeId(1),
            oid: Oid(7),
        };
        assert!(e.to_string().contains("O7"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            BmxError::OwnerUnknown { oid: Oid(1) },
            BmxError::OwnerUnknown { oid: Oid(1) }
        );
        assert_ne!(
            BmxError::OwnerUnknown { oid: Oid(1) },
            BmxError::OwnerUnknown { oid: Oid(2) }
        );
    }
}
