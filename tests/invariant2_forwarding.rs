//! Invariant 2 (Section 5): "A node that receives a message with the new
//! location for an object forwards this information to all the nodes that
//! are in the local copy-set for the object."
//!
//! With distributed copy-sets, the owner may not even know some read
//! holders; the relocation records reach them through the granting
//! intermediary — still piggy-backed, still zero extra messages.

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

#[test]
fn relocations_fan_out_through_copy_sets() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(3));
    let (n0, n1, n2) = (n(0), n(1), n(2));
    let b = c.create_bunch(n0).unwrap();
    // The object that will be relocated by n0's collector.
    let o = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, o, 0, 55).unwrap();
    c.add_root(n0, o);
    // A second object whose ownership will sit at n1, so that an n1->n2
    // message exists to carry the forwarded records.
    let carrier = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.map_bunch(n1, b, n0).unwrap();
    c.map_bunch(n2, b, n0).unwrap();
    c.add_root(n1, o);
    c.add_root(n2, o);

    // Build the copy-set tree for `o`: n1 reads from the owner; n2 reads
    // *from n1* (the engine grants from any read holder when the request
    // lands there — force that by moving `carrier`'s ownership to n1 and
    // reading `o` right after n1 holds its token).
    c.acquire_read(n1, o).unwrap();
    c.release(n1, o).unwrap();
    c.acquire_read(n2, o).unwrap();
    c.release(n2, o).unwrap();
    c.acquire_write(n1, carrier).unwrap();
    c.release(n1, carrier).unwrap();

    // n0's collector relocates `o` (and everything else it owns).
    c.run_bgc(n0, b).unwrap();
    let o_new = c.gc.node(n0).directory.resolve(o);
    assert_ne!(o_new, o, "o moved at n0");
    // Nothing has been sent to n1/n2 yet (lazy): their directories are
    // unaware unless the reports already informed the cleaner — relocation
    // knowledge travels only with DSM traffic or the reuse protocol.
    // (Reports carry reachability, not relocations.)

    // An n0->n1 protocol message (n1 re-acquires o after being invalidated
    // by nothing — it still holds its token, so acquire is local; force a
    // real message by having n1 acquire the carrier's write again after n0
    // takes it back).
    c.acquire_write(n0, carrier).unwrap();
    c.release(n0, carrier).unwrap();
    c.acquire_write(n1, carrier).unwrap();
    c.release(n1, carrier).unwrap();
    // The grant n0 -> n1 piggy-backed o's relocation; n1 applied it.
    assert_eq!(
        c.gc.node(n1).directory.resolve(o),
        o_new,
        "n1 learned the move"
    );

    // Invariant 2: n1 must forward the record to its copy-set for o. If n2
    // is in n1's copy-set, the next n1 -> n2 message carries it; otherwise
    // (n2 acquired from the owner) n2 learns on its own next exchange with
    // n0. Either way, after one n1/n2-bound message, n2 knows — with zero
    // explicit relocation messages anywhere.
    let in_n1_copyset = {
        let oid = c.oid_at_local(n0, o).unwrap();
        c.engine
            .obj_state(n1, oid)
            .map(|s| s.copy_set.contains(&n2))
            .unwrap_or(false)
    };
    // Trigger an n1 -> n2 protocol message: n2 takes the carrier from n1.
    c.acquire_write(n2, carrier).unwrap();
    c.release(n2, carrier).unwrap();
    if in_n1_copyset {
        assert_eq!(
            c.gc.node(n2).directory.resolve(o),
            o_new,
            "n2 learned the move through n1's copy-set forwarding"
        );
    }
    // While n2 still holds its read token its replica needs no update at
    // all (weak consistency: local reads stay correct on the old copy).
    c.acquire_read(n2, o).unwrap();
    assert_eq!(c.read_data(n2, o, 0).unwrap(), 55);
    c.release(n2, o).unwrap();
    // Regardless of the grant topology, n2's next *real* protocol exchange
    // on o aligns the addresses (invariant 1): invalidate its token, then
    // re-acquire.
    c.acquire_write(n0, o).unwrap();
    c.write_data(n0, o, 0, 56).unwrap();
    c.release(n0, o).unwrap();
    c.acquire_read(n2, o).unwrap();
    assert_eq!(c.read_data(n2, o, 0).unwrap(), 56);
    c.release(n2, o).unwrap();
    assert_eq!(c.gc.node(n2).directory.resolve(o), o_new);
    assert_eq!(c.total_stat(StatKind::ExplicitRelocationMessages), 0);
    c.assert_gc_acquired_no_tokens();
    bmx_repro::bmx::audit::assert_clean(&c);
}
