//! Chaos on real threads: the fault plane and the recovery pipeline,
//! ported from the deterministic simulator to the `bmx::parallel`
//! runtime.
//!
//! The deterministic chaos suites (`tests/chaos.rs`,
//! `tests/chaos_amnesia.rs`) prove the protocol survives loss,
//! duplication, partitions, and crash-amnesia *under the tick clock*.
//! This suite re-proves the same properties where the adversary is real
//! hardware concurrency: a seeded [`FaultyTransport`] drops, duplicates,
//! delays, and partitions the channel links between genuinely parallel
//! node threads, and the supervisor restarts crashed failure domains
//! live — without stopping the cluster.
//!
//! Gates, per run: the Section-5 acquire invariants recovered from the
//! causally merged trace stream, `assert_no_premature_reclamation` over
//! every object the workload keeps live, per-class message conservation
//! (`delivered + dropped == sent` — duplicates count as sends of their
//! own), payload totals replayed from the workload seed, and watchdog
//! silence for the detectors a fault plan cannot legitimately trip.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bmx_common::SplitMix64;
use bmx_repro::bmx::{audit, blackbox};
use bmx_repro::metrics::{self, WatchdogConfig};
use bmx_repro::prelude::*;
use bmx_repro::profile;
use bmx_repro::trace::{self, AlarmKind, TraceEvent};
use parking_lot::Mutex;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

const NODES: u32 = 3;
const SHARED: usize = 4;
const STEPS: u64 = 24;
const VICTIM: u32 = 2;

/// Serializes the tests in this binary: chaos runs install the
/// *process-global* trace recorder, and two concurrently running
/// clusters would interleave records (overlapping OIDs — false
/// positives in the invariant queries).
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn per_node_rng(seed: u64, node: u32) -> SplitMix64 {
    SplitMix64::new(seed ^ ((u64::from(node) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

fn step_plan(rng: &mut SplitMix64) -> usize {
    (rng.next_u64() % SHARED as u64) as usize
}

/// Per-shared-object increment totals replayed from the seed alone.
fn expected_totals(seed: u64) -> Vec<u64> {
    let mut totals = vec![0u64; SHARED];
    for node in 0..NODES {
        let mut rng = per_node_rng(seed, node);
        for _ in 0..STEPS {
            totals[step_plan(&mut rng)] += 1;
        }
    }
    totals
}

#[derive(Clone)]
struct Setup {
    shared_bunch: BunchId,
    priv_bunch: Vec<BunchId>,
    shared: Vec<Addr>,
    keep: Vec<Addr>,
}

/// Same phase-structured workload as the conformance suite: sequential
/// setup (address determinism), commutative racing phase, sequential
/// settle — so the faulted runs stay comparable to the replayed totals.
fn setup_workload(c: &mut Cluster) -> Setup {
    let n0 = n(0);
    let shared_bunch = c.create_bunch(n0).unwrap();
    let shared: Vec<Addr> = (0..SHARED)
        .map(|_| {
            let o = c
                .alloc(n0, shared_bunch, &ObjSpec::with_refs(2, &[0]))
                .unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    for i in 1..NODES {
        c.map_bunch(n(i), shared_bunch, n0).unwrap();
        for &o in &shared {
            c.add_root(n(i), o);
        }
    }
    let mut priv_bunch = Vec::new();
    let mut keep = Vec::new();
    for i in 0..NODES {
        let node = n(i);
        let pb = c.create_bunch(node).unwrap();
        let k = c.alloc(node, pb, &ObjSpec::with_refs(2, &[0])).unwrap();
        c.add_root(node, k);
        c.write_ref(node, k, 0, shared[0]).unwrap();
        priv_bunch.push(pb);
        keep.push(k);
    }
    Setup {
        shared_bunch,
        priv_bunch,
        shared,
        keep,
    }
}

/// The racing phase on real threads. `retry` makes each step retry on
/// typed errors (a crashed token owner, a timed-out acquire) until an
/// overall deadline — the crash tests *require* errors to surface and be
/// survivable; the pure-fault tests require there to be none.
fn run_mutators(
    pc: &ParallelCluster,
    s: &Setup,
    seed: u64,
    retry: bool,
) -> (Vec<String>, Vec<u64>, u64) {
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let typed_errors = Arc::new(AtomicU64::new(0));
    let completed: Arc<Vec<AtomicU64>> = Arc::new((0..NODES).map(|_| AtomicU64::new(0)).collect());
    let mut threads = Vec::new();
    for i in 0..NODES {
        let h = pc.handle(n(i));
        let s = s.clone();
        let failures = Arc::clone(&failures);
        let typed_errors = Arc::clone(&typed_errors);
        let completed = Arc::clone(&completed);
        threads.push(std::thread::spawn(move || {
            h.bind_metrics();
            let mut rng = per_node_rng(seed, i);
            let deadline = Instant::now() + Duration::from_secs(60);
            'steps: for step in 0..STEPS {
                let o = s.shared[step_plan(&mut rng)];
                let pb = s.priv_bunch[i as usize];
                let one_step = || -> Result<()> {
                    h.acquire_write(o)?;
                    let v = h.read_data(o, 1)?;
                    h.write_data(o, 1, v + 1)?;
                    h.release(o)?;
                    if step % 6 == 2 {
                        let g = h.alloc(pb, &ObjSpec::with_refs(2, &[0]))?;
                        h.write_data(g, 1, step)?;
                    }
                    if step % 8 == 5 {
                        h.run_bgc(pb)?;
                    }
                    if step % 5 == 3 {
                        // A shared-bunch collection broadcasts reports to
                        // every mapper: the run's cross-node GC traffic,
                        // i.e. the classes the fault plane may drop and
                        // duplicate.
                        h.run_bgc(s.shared_bunch)?;
                    }
                    Ok(())
                };
                loop {
                    match one_step() {
                        Ok(()) => {
                            completed[i as usize].fetch_add(1, Ordering::Relaxed);
                            continue 'steps;
                        }
                        Err(e) if retry && Instant::now() < deadline => {
                            if matches!(e, BmxError::NodeDown { .. }) {
                                typed_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            // Note: the increment of a *partially* failed
                            // step may or may not have landed; crash runs
                            // therefore do not compare payload totals.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => {
                            failures.lock().push(format!("node {i} step {step}: {e}"));
                            break 'steps;
                        }
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("mutator thread");
    }
    let fails = failures.lock().clone();
    let done = completed
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    (fails, done, typed_errors.load(Ordering::Relaxed))
}

/// Post-shutdown settle + safety gates on the final cluster state.
/// `check_totals` is off for crash runs: an increment the crashed node
/// had applied but not yet checkpointed is legitimately lost (that *is*
/// the amnesia model); safety gates still hold unconditionally.
fn settle_and_check(c: &mut Cluster, s: &Setup, seed: u64, check_totals: bool) {
    let n0 = n(0);
    c.settle(50_000).unwrap();
    for &o in &s.shared {
        c.acquire_write(n0, o).unwrap();
        c.release(n0, o).unwrap();
    }
    for i in 0..NODES {
        c.run_bgc(n(i), s.shared_bunch).unwrap();
    }
    c.run_bgc(n0, s.priv_bunch[0]).unwrap();
    c.settle(50_000).unwrap();
    c.assert_gc_acquired_no_tokens();

    // Liveness goes through the audit (which resolves relocations via the
    // directory — the copying collector may have moved these objects, so
    // raw address containment in the root-reachable set would be wrong).
    let live: Vec<(NodeId, Addr)> = s
        .shared
        .iter()
        .map(|&o| (n0, o))
        .chain(std::iter::once((n0, s.keep[0])))
        .collect();
    audit::assert_no_premature_reclamation(c, &live);
    assert!(
        !c.reachable_from_roots(n0).is_empty(),
        "N0's root-reachable set collapsed"
    );
    if check_totals {
        let totals: Vec<u64> = s
            .shared
            .iter()
            .map(|&o| c.read_data(n0, o, 1).unwrap())
            .collect();
        assert_eq!(
            totals,
            expected_totals(seed),
            "payload totals diverged from the workload replay (seed {seed:#x})"
        );
    }
}

fn write_report(tag: &str, seed: u64, report: &ShutdownReport) {
    let out = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(out);
    let _ = std::fs::write(
        out.join(format!("parallel-report-{tag}-seed-{seed:#x}.txt")),
        format!("{report:#?}\n"),
    );
}

/// Writes a *stamped* snapshot (capture time + node generations, from
/// [`ParallelCluster::metrics_snapshot`]) so soak artifacts from
/// different seeds and runs stay orderable after the fact.
fn write_metrics_snapshot(tag: &str, seed: u64, snap: &metrics::Snapshot) {
    let out = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(out);
    let _ = std::fs::write(
        // Deliberately NOT `metrics-*.json`: the nightly chaos job greps
        // those for unconditional watchdog silence, and a faulted
        // parallel run may legitimately latch ProgressStall/ClockStall.
        out.join(format!("parallel-metrics-{tag}-seed-{seed:#x}.json")),
        metrics::json::to_json(snap),
    );
}

/// The fault plan for the soak: every link drops loss-tolerant traffic,
/// duplicates idempotent traffic, and delays everything with the given
/// probabilities; one timed partition splits N0 from {N1, N2} early in
/// the run and heals on the supervisor's pulse clock.
fn soak_plan() -> ParallelFaultPlan {
    ParallelFaultPlan::default()
        .all_links(ParallelLinkFault {
            drop: 0.15,
            duplicate: 0.15,
            delay: 0.10,
        })
        .partition(vec![n(0)], vec![n(1), n(2)], 40, 120)
}

/// One full soak run: seeded faults on every link, no crash. Everything
/// must complete without a single surfaced error, conserve per class,
/// match the replayed totals, and keep the leak watchdogs silent.
fn run_fault_soak(seed: u64) {
    trace::install_global_vec();
    let _ = trace::take_global();
    let mreg = metrics::install_with(WatchdogConfig {
        interval: 50,
        ..WatchdogConfig::default()
    });
    // Armed for the whole soak: a watchdog alarm, a genuine node crash,
    // or a failed shutdown writes a post-mortem to
    // `target/blackbox/soak-seed-<seed>/`. Disarmed on the success path
    // below, so a green run leaves the directory absent (the CI gate).
    blackbox::arm(&format!("soak-seed-{seed:#x}"));

    let cfg = ClusterConfig::with_nodes(NODES).with_acquire_timeout(Duration::from_secs(30));
    let pc = ParallelCluster::spawn_with_chaos(
        cfg,
        ChaosConfig {
            seed,
            plan: soak_plan(),
            ..ChaosConfig::default()
        },
    );
    let s = pc
        .handle(n(0))
        .with(|c| Ok(setup_workload(c)))
        .expect("setup");
    assert!(
        pc.quiesce(Duration::from_secs(30)),
        "setup failed to settle under faults (seed {seed:#x})"
    );

    let (failures, completed, _) = run_mutators(&pc, &s, seed, false);
    assert!(
        failures.is_empty(),
        "pure-fault soak surfaced errors (seed {seed:#x}): {failures:?}"
    );
    assert!(
        completed.iter().all(|&c| c == STEPS),
        "not every node completed its steps (seed {seed:#x}): {completed:?}"
    );

    assert!(
        pc.quiesce(Duration::from_secs(30)),
        "failed to quiesce under faults (seed {seed:#x})"
    );
    let stats = pc.fault_stats().expect("chaos stats");
    let snap = pc.metrics_snapshot().expect("registry installed");
    let (mut cluster, report) = pc.shutdown(Shutdown::Drain).expect("drain shutdown");
    write_report("soak", seed, &report);

    assert_eq!(report.restarts, 0, "no crash was injected (seed {seed:#x})");
    assert_eq!(
        report.delivered + report.dropped,
        report.sent,
        "global conservation (seed {seed:#x}): {report:?}"
    );
    for (idx, class) in MsgClass::ALL.into_iter().enumerate() {
        assert_eq!(
            report.delivered_by_class[idx] + report.dropped_by_class[idx],
            report.sent_by_class[idx],
            "conservation for {class:?} (seed {seed:#x}): {report:?}"
        );
    }
    assert_eq!(
        report.dropped_by_class[0], 0,
        "the fault plane must never drop the reliable DSM class (seed {seed:#x})"
    );
    assert!(
        stats.injected_drops + stats.duplicates > 0 && stats.delayed > 0,
        "the plan actually injected faults (seed {seed:#x}): {stats:?}"
    );
    assert_eq!(stats.held_now, 0, "nothing left held (seed {seed:#x})");

    settle_and_check(&mut cluster, &s, seed, true);

    // Section-5 acquire invariants over the causally merged trace of all
    // node threads, faults and all.
    let records = trace::take_global();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::AcquireComplete { .. })),
        "trace captured no acquires — checker vacuous (seed {seed:#x})"
    );
    let bad = trace::query::acquire_invariant_violations(&records);
    assert!(
        bad.is_empty(),
        "Section-5 acquire violations under faults (seed {seed:#x}): {bad:?}"
    );

    // Watchdog policy: a fault plan may legitimately latch the liveness
    // detectors (ProgressStall while partitioned, ClockStall while a
    // link heals) — but never the leak detectors, and never RetryStorm
    // (the retry daemon does not run in parallel mode).
    for kind in [
        AlarmKind::FromSpaceLeak,
        AlarmKind::ScionBacklog,
        AlarmKind::RetryStorm,
    ] {
        assert_eq!(
            mreg.alarms(kind),
            0,
            "leak watchdog {kind:?} fired during a green soak (seed {seed:#x}; \
             snapshot in target/chaos/parallel-metrics-soak-seed-{seed:#x}.json)"
        );
    }
    write_metrics_snapshot("soak", seed, &snap);
    blackbox::disarm();
    metrics::disable();
    trace::disable_global();
}

/// Headline A: with chaos *configured but empty* (zero probabilities, no
/// partitions), the chaos runtime is exactly the conformance runtime —
/// same digest-bearing final state as a fault-free run, full
/// conservation, total watchdog silence.
#[test]
fn chaos_with_zero_plan_is_conformant() {
    let _serial = SERIAL.lock().unwrap();
    let seed = 0xCAFE_0001u64;
    let mreg = metrics::install_with(WatchdogConfig {
        interval: 50,
        ..WatchdogConfig::default()
    });
    let pc = ParallelCluster::spawn_with_chaos(
        ClusterConfig::with_nodes(NODES),
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        },
    );
    let s = pc
        .handle(n(0))
        .with(|c| Ok(setup_workload(c)))
        .expect("setup");
    assert!(pc.quiesce(Duration::from_secs(10)), "setup settle");
    let (failures, completed, typed) = run_mutators(&pc, &s, seed, false);
    assert!(failures.is_empty(), "zero-plan run failed: {failures:?}");
    assert!(completed.iter().all(|&c| c == STEPS));
    assert_eq!(typed, 0);
    assert!(pc.quiesce(Duration::from_secs(10)), "quiesce");
    let stats = pc.fault_stats().expect("chaos stats");
    assert_eq!(
        (stats.injected_drops, stats.duplicates, stats.delayed),
        (0, 0, 0),
        "a zero plan injects nothing"
    );
    let (mut cluster, report) = pc.shutdown(Shutdown::Drain).expect("drain shutdown");
    assert_eq!(report.dropped, 0, "zero plan + drain drops nothing");
    assert_eq!(report.delivered, report.sent);
    settle_and_check(&mut cluster, &s, seed, true);
    assert_eq!(
        mreg.total_alarms(),
        0,
        "watchdog fired on a fault-free parallel run"
    );
    metrics::disable();
}

/// Headline B: eight seeds of mixed mutator/BGC traffic under per-link
/// drop/duplication/delay plus a healing partition. Every seed must
/// conserve, match the replayed totals, pass the audits and the
/// Section-5 checker, and keep the leak watchdogs silent.
#[test]
fn fault_soak_eight_seeds() {
    let _serial = SERIAL.lock().unwrap();
    for seed in [
        0x5EED_0001u64,
        0x5EED_0002,
        0x5EED_0003,
        0x5EED_0004,
        0xFA57_0005,
        0xFA57_0006,
        0xD00F_0007,
        0xD00F_0008,
    ] {
        run_fault_soak(seed);
    }
}

/// Headline C: a mid-run injected crash fails *one* failure domain; the
/// supervisor restarts it live through the crash-amnesia recovery
/// pipeline (RVM replay, epoch rejoin, scion regeneration) while the
/// surviving nodes keep completing operations; the revived node serves
/// again before shutdown — which therefore reports success.
#[test]
fn injected_crash_restarts_live_and_rejoins() {
    let _serial = SERIAL.lock().unwrap();
    let seed = 0xC4A5_0001u64;
    // Crash-amnesia recovery replays the victim's RVM store; without a
    // persistent checkpoint the revived node would come back knowing no
    // bunches at all (exactly the sim's amnesia model).
    let dir = std::env::temp_dir().join(format!("bmx-parallel-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ClusterConfig::with_nodes(NODES).with_acquire_timeout(Duration::from_secs(30));
    cfg.persist = Some(PersistConfig::at(&dir));
    let pc = ParallelCluster::spawn_with_chaos(
        cfg,
        ChaosConfig {
            seed,
            plan: ParallelFaultPlan::default().all_links(ParallelLinkFault {
                drop: 0.0,
                duplicate: 0.0,
                delay: 0.05,
            }),
            restart_delay_pulses: 8,
            ..ChaosConfig::default()
        },
    );
    let s = pc
        .handle(n(0))
        .with(|c| Ok(setup_workload(c)))
        .expect("setup");
    assert!(pc.quiesce(Duration::from_secs(10)), "setup settle");
    // Cut a post-BGC RVM checkpoint at every node so the victim has a
    // restore point that knows the workload's bunches.
    for i in 0..NODES {
        let h = pc.handle(n(i));
        h.run_bgc(s.priv_bunch[i as usize]).expect("checkpoint bgc");
        h.run_bgc(s.shared_bunch).expect("checkpoint bgc");
    }
    assert!(pc.quiesce(Duration::from_secs(10)), "checkpoint settle");

    // Crash the victim a few milliseconds into the racing phase, from a
    // side thread, so the mutators genuinely race the failure and the
    // supervisor's live restart.
    let (failures, completed, _typed) = std::thread::scope(|sc| {
        sc.spawn(|| {
            std::thread::sleep(Duration::from_millis(5));
            pc.inject_crash(n(VICTIM));
        });
        run_mutators(&pc, &s, seed, true)
    });
    assert!(
        failures.is_empty(),
        "crash run surfaced unretried errors: {failures:?}"
    );
    assert!(
        completed
            .iter()
            .enumerate()
            .filter(|(i, _)| *i as u32 != VICTIM)
            .all(|(_, &c)| c == STEPS),
        "survivors must complete every step: {completed:?}"
    );
    assert_eq!(
        completed[VICTIM as usize], STEPS,
        "the revived victim must finish its workload too: {completed:?}"
    );

    // The supervisor must have brought the victim all the way back.
    let deadline = Instant::now() + Duration::from_secs(10);
    while pc.node_status(n(VICTIM)) != NodeStatus::Alive {
        assert!(Instant::now() < deadline, "victim never returned to Alive");
        std::thread::sleep(Duration::from_millis(1));
    }
    let live = pc.liveness();
    assert!(live[VICTIM as usize].restarts >= 1, "restart recorded");
    assert!(
        live[VICTIM as usize]
            .note
            .as_deref()
            .is_some_and(|note| note.contains("injected crash")),
        "the crash reason survives recovery: {live:?}"
    );
    for i in 0..NODES {
        if i != VICTIM {
            assert_eq!(live[i as usize].restarts, 0, "survivors never restarted");
            assert_eq!(live[i as usize].status, NodeStatus::Alive);
        }
    }

    // The revived node serves new work.
    let hv = pc.handle(n(VICTIM));
    hv.acquire_write(s.shared[0]).expect("revived acquire");
    hv.release(s.shared[0]).expect("revived release");

    assert!(pc.quiesce(Duration::from_secs(30)), "post-crash quiesce");
    let (mut cluster, report) = pc
        .shutdown(Shutdown::Drain)
        .expect("a crash the supervisor healed is not a shutdown failure");
    write_report("crash", seed, &report);
    assert!(report.restarts >= 1, "restarts in the report: {report:?}");
    assert_eq!(
        report.delivered + report.dropped,
        report.sent,
        "conservation across a crash: {report:?}"
    );

    assert!(!cluster.in_recovery(n(VICTIM)), "rejoin completed");
    assert!(
        cluster.recovery_log.iter().any(|r| r.node == n(VICTIM)),
        "the recovery pipeline logged the victim's rejoin: {:?}",
        cluster.recovery_log
    );
    // Amnesia may lose the victim's unpersisted increments — totals are
    // not comparable; every safety gate still is.
    settle_and_check(&mut cluster, &s, seed, false);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole gate: without a supervisor restart (plain spawn), a crashed
/// node stays down — but *only* that node. Survivors keep completing
/// operations on their own failure domains; the victim's submitters get
/// the typed [`BmxError::NodeDown`]; shutdown reports the dead node.
#[test]
fn survivors_outlive_a_downed_node() {
    let _serial = SERIAL.lock().unwrap();
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(NODES));
    let s = pc
        .handle(n(0))
        .with(|c| Ok(setup_workload(c)))
        .expect("setup");
    assert!(pc.quiesce(Duration::from_secs(10)), "setup settle");

    pc.inject_crash(n(VICTIM));

    // The victim's submitters fail fast with the typed error.
    let hv = pc.handle(n(VICTIM));
    match hv.read_data(s.shared[0], 1) {
        Err(BmxError::NodeDown { node }) => assert_eq!(node, n(VICTIM)),
        other => panic!("expected NodeDown, got {other:?}"),
    }

    // Survivors keep serving on their own domains: private-bunch churn
    // plus shared traffic between the two live nodes.
    for i in 0..NODES - 1 {
        let h = pc.handle(n(i));
        let pb = s.priv_bunch[i as usize];
        for step in 0..8u64 {
            let g = h.alloc(pb, &ObjSpec::with_refs(2, &[0])).expect("alloc");
            h.write_data(g, 1, step).expect("write");
        }
        h.run_bgc(pb).expect("bgc");
    }
    let h0 = pc.handle(n(0));
    h0.acquire_write(s.shared[1]).expect("live-side acquire");
    let v = h0.read_data(s.shared[1], 1).expect("read");
    h0.write_data(s.shared[1], 1, v + 1).expect("write");
    h0.release(s.shared[1]).expect("release");

    // No supervisor restart without chaos: still down, zero restarts.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(pc.node_status(n(VICTIM)), NodeStatus::Down);
    assert_eq!(pc.liveness()[VICTIM as usize].restarts, 0);

    let msg = match pc.shutdown(Shutdown::Drain) {
        Ok(_) => panic!("a still-down node must fail shutdown"),
        Err(e) => e.to_string(),
    };
    assert!(
        msg.contains(&format!("N{VICTIM}")) && msg.contains("injected crash"),
        "shutdown error names the dead node: {msg}"
    );
}

/// Satellite: a panic inside a user closure passed to [`NodeHandle::with`]
/// is the *caller's* problem — the error surfaces to that caller only,
/// the node's failure domain stays alive, and subsequent operations (from
/// the same handle!) succeed. Only panics inside protocol code crash the
/// domain.
#[test]
fn user_closure_panic_does_not_crash_the_node() {
    let _serial = SERIAL.lock().unwrap();
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(NODES));
    let h = pc.handle(n(1));
    let err = h
        .with(|_c| -> Result<()> { panic!("application bug, not a protocol bug") })
        .expect_err("the panic surfaces as an error");
    assert!(
        err.to_string().contains("panicked"),
        "error carries the panic: {err}"
    );
    assert_eq!(
        pc.node_status(n(1)),
        NodeStatus::Alive,
        "a user panic must not fail the node's domain"
    );
    let b = h.create_bunch().expect("the node still serves");
    let o = h.alloc(b, &ObjSpec::with_refs(1, &[])).expect("alloc");
    h.add_root(o).expect("root");
    let (_cluster, report) = pc.shutdown(Shutdown::Drain).expect("clean shutdown");
    assert_eq!(report.delivered + report.dropped, report.sent);
}

/// Acceptance for the post-mortem blackbox (DESIGN.md §13): an injected
/// watchdog alarm on an armed runtime must make the *supervisor* write
/// `target/blackbox/<label>/` containing the span trace, a stamped
/// metrics snapshot, and the flight recorder — and every file must parse
/// with the repo's own readers. The dump directory is removed on the way
/// out: this dump is expected, and the nightly gate treats any surviving
/// `target/blackbox/` entry on a green run as a bug.
#[test]
fn injected_watchdog_alarm_produces_blackbox_dump() {
    let _serial = SERIAL.lock().unwrap();
    let label = format!("alarm-test-{:x}", std::process::id());
    let dir = std::path::Path::new("target/blackbox").join(&label);
    let _ = std::fs::remove_dir_all(&dir);

    trace::install_global_vec();
    let _ = trace::take_global();
    let mreg = metrics::install_with(WatchdogConfig {
        interval: 10,
        ..WatchdogConfig::default()
    });
    profile::enable(2048);
    blackbox::arm(&label);

    // A little real traffic first, so the dump has spans, counters, and
    // flight-recorder events to carry.
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(2));
    let h0 = pc.handle(n(0));
    let h1 = pc.handle(n(1));
    let b = h0.create_bunch().expect("bunch");
    let o = h0.alloc(b, &ObjSpec::with_refs(2, &[0])).expect("alloc");
    h0.add_root(o).expect("root");
    h1.map_bunch(b, n(0)).expect("map");
    h1.acquire_write(o).expect("acquire");
    h1.write_data(o, 1, 7).expect("write");
    h1.release(o).expect("release");
    assert!(pc.quiesce(Duration::from_secs(10)), "quiesce");

    // Stands in for a real watchdog detection; the supervisor's next
    // watchdog pulse sees the alarm total move and writes the dump.
    metrics::inject_alarm(&mreg, 0, AlarmKind::FromSpaceLeak);

    // `flight.trace.json` is written last, so its existence means the
    // whole dump is on disk.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !dir.join("flight.trace.json").exists() {
        assert!(
            Instant::now() < deadline,
            "supervisor never wrote the blackbox dump to {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let reason = std::fs::read_to_string(dir.join("reason.txt")).expect("reason.txt");
    assert!(
        reason.contains("watchdog alarm"),
        "reason names the trigger: {reason:?}"
    );

    let spans = std::fs::read_to_string(dir.join("spans.trace.json")).expect("spans.trace.json");
    trace::chrome::validate(&spans).expect("span trace parses");
    assert!(
        spans.contains("\"acquire\"") && spans.contains("mutex/hold"),
        "span dump carries the recorded spans"
    );

    let snap = metrics::json::from_json(
        &std::fs::read_to_string(dir.join("metrics.json")).expect("metrics.json"),
    )
    .expect("metrics snapshot parses");
    assert!(
        snap.get("meta/captured_unix_ms") > 0,
        "snapshot is stamped with capture time"
    );
    assert!(
        snap.entries.contains_key("node0/meta/generation"),
        "snapshot is stamped with node generations"
    );
    assert_eq!(
        snap.get("alarm/from_space_leak"),
        1,
        "the injected alarm is in the dumped snapshot"
    );

    let flight = std::fs::read_to_string(dir.join("flight.trace.json")).expect("flight");
    trace::chrome::validate(&flight).expect("flight trace parses");
    // The snapshot is non-draining: the recorder still holds its events
    // for the run's own checkers.
    assert!(
        !trace::take_global().is_empty(),
        "the blackbox must not consume the flight recorder"
    );

    blackbox::disarm();
    profile::disable();
    let (_cluster, report) = pc.shutdown(Shutdown::Drain).expect("shutdown");
    assert_eq!(report.dropped, 0);
    metrics::disable();
    trace::disable_global();
    // Expected dump: clean it up so a green run leaves target/blackbox/
    // empty for the CI gate.
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI sweep entry point: seeds from `PARALLEL_CHAOS_SEEDS`
/// (comma-separated, 0x-hex or decimal), defaulting to 1..=8. Runs the
/// full fault soak per seed; a failing seed writes a replay artifact to
/// `target/chaos/parallel-failing-seed-*.txt` and the sweep reports
/// every failure at once.
#[test]
fn parallel_chaos_seed_sweep() {
    let _serial = SERIAL.lock().unwrap();
    let seeds: Vec<u64> = match std::env::var("PARALLEL_CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                let t = t.trim();
                match t.strip_prefix("0x") {
                    Some(h) => u64::from_str_radix(h, 16).expect("hex seed"),
                    None => t.parse().expect("decimal seed"),
                }
            })
            .collect(),
        Err(_) => (1..=8).collect(),
    };
    let mut failed = Vec::new();
    for seed in seeds {
        let outcome = std::panic::catch_unwind(|| run_fault_soak(seed));
        if let Err(panic) = outcome {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            // The harness itself failing is the third blackbox trigger
            // class: grab the post-mortem under the soak's armed label
            // while the span rings still hold the failing run.
            blackbox::dump_if_armed(&format!("chaos soak failed: {msg}"), None, &[]);
            blackbox::disarm();
            metrics::disable();
            trace::disable_global();
            let dir = std::path::Path::new("target/chaos");
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(
                dir.join(format!("parallel-failing-seed-{seed:#x}.txt")),
                format!(
                    "parallel chaos seed: {seed:#x}\nreplay: PARALLEL_CHAOS_SEEDS={seed:#x} \
                     cargo test --release --test parallel_chaos parallel_chaos_seed_sweep\n\
                     fault plan: {:#?}\npanic: {msg}\n",
                    soak_plan(),
                ),
            );
            failed.push((seed, msg));
        }
    }
    assert!(
        failed.is_empty(),
        "parallel chaos seeds failed (replay artifacts in target/chaos/): {failed:?}"
    );
}
