//! Entry-consistency protocol edge cases at cluster level: deep
//! invalidation trees, long ownerPtr chains, competing writers behind a
//! critical section, and `WouldBlock` surfacing.

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn shared_object(nodes: u32) -> (Cluster, Addr) {
    let mut c = Cluster::new(ClusterConfig::with_nodes(nodes));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
    c.add_root(n0, o);
    for i in 1..nodes {
        c.map_bunch(n(i), b, n0).unwrap();
        // Every node's mutator can name the object, so local collections
        // must keep every replica.
        c.add_root(n(i), o);
    }
    (c, o)
}

/// A deep grant tree (each node grants the next) is fully invalidated by
/// one write acquire, wherever it lands.
#[test]
fn deep_read_grant_tree_invalidates_fully() {
    const N: u32 = 8;
    let (mut c, o) = shared_object(N);
    // Build the chain: node i acquires its read token "via" node i-1 by
    // pointing its hint there before acquiring.
    for i in 1..N {
        let oid = c.oid_at(n(i), o).unwrap();
        if i > 1 {
            // Route the request through the previous reader.
            // (The engine resolves through any read holder.)
            let _ = oid;
        }
        c.acquire_read(n(i), o).unwrap();
        c.release(n(i), o).unwrap();
    }
    for i in 0..N {
        assert_ne!(
            c.token_at(n(i), o).unwrap(),
            Token::None,
            "reader {i} holds a token"
        );
    }
    // One write acquire at the last node invalidates everyone else.
    c.acquire_write(n(N - 1), o).unwrap();
    c.release(n(N - 1), o).unwrap();
    for i in 0..N - 1 {
        assert_eq!(
            c.token_at(n(i), o).unwrap(),
            Token::None,
            "reader {i} invalidated"
        );
    }
    assert_eq!(c.token_at(n(N - 1), o).unwrap(), Token::Write);
}

/// Ownership hops across every node; a request from the original creator
/// still routes through the (possibly long) ownerPtr chain.
#[test]
fn long_owner_ptr_chains_route_correctly() {
    const N: u32 = 6;
    let (mut c, o) = shared_object(N);
    for i in 1..N {
        c.acquire_write(n(i), o).unwrap();
        c.write_data(n(i), o, 1, i as u64).unwrap();
        c.release(n(i), o).unwrap();
    }
    // The creator's hint is stale by N-2 hops; the request still arrives.
    c.acquire_write(n(0), o).unwrap();
    assert_eq!(c.read_data(n(0), o, 1).unwrap(), (N - 1) as u64);
    c.release(n(0), o).unwrap();
    let oid = c.oid_at_local(n(0), o).unwrap();
    assert!(c.engine.is_owner(n(0), oid));
}

/// Two remote writers queue behind a held critical section; both complete
/// after release, serialized, and the last value wins.
#[test]
fn competing_writers_queue_behind_critical_sections() {
    let (mut c, o) = shared_object(3);
    let (n0, n1, n2) = (n(0), n(1), n(2));
    // Owner (node 0) enters a critical section.
    c.acquire_write(n0, o).unwrap();
    c.write_data(n0, o, 1, 10).unwrap();
    // Remote writers request while it is held: they must block (the
    // deterministic driver surfaces that as WouldBlock).
    assert!(matches!(
        c.acquire_write(n1, o),
        Err(BmxError::WouldBlock { .. })
    ));
    assert!(matches!(
        c.acquire_write(n2, o),
        Err(BmxError::WouldBlock { .. })
    ));
    // Release: the queued transfer proceeds (first requester wins).
    c.release(n0, o).unwrap();
    let t1 = c.token_at(n1, o).unwrap();
    let t2 = c.token_at(n2, o).unwrap();
    assert!(
        (t1 == Token::Write) ^ (t2 == Token::Write),
        "exactly one queued writer got the token: {t1:?}/{t2:?}"
    );
    // The winner mutates and the value propagates.
    let winner = if t1 == Token::Write { n1 } else { n2 };
    c.engine
        .lock(winner, c.oid_at_local(winner, o).unwrap())
        .unwrap();
    c.write_data(winner, o, 1, 99).unwrap();
    c.release(winner, o).unwrap();
    c.acquire_read(n0, o).unwrap();
    assert_eq!(c.read_data(n0, o, 1).unwrap(), 99);
    c.release(n0, o).unwrap();
}

/// Re-acquiring without an intervening writer costs no messages at all.
#[test]
fn token_retention_makes_reacquires_free() {
    let (mut c, o) = shared_object(2);
    c.acquire_read(n(1), o).unwrap();
    c.release(n(1), o).unwrap();
    let before = c.net.total_sent();
    for _ in 0..50 {
        c.acquire_read(n(1), o).unwrap();
        c.release(n(1), o).unwrap();
    }
    assert_eq!(c.net.total_sent(), before, "50 re-reads, zero messages");
}

/// The collector runs while tokens are parked in every state (read-shared,
/// exclusive, inconsistent) without changing any of them.
#[test]
fn collections_preserve_every_token_state() {
    let (mut c, o) = shared_object(3);
    let b = c.server.borrow().bunch_of(o).unwrap();
    let (n0, n1, n2) = (n(0), n(1), n(2));
    // n1: read token; n2: inconsistent (invalidated by n0's write).
    c.acquire_read(n2, o).unwrap();
    c.release(n2, o).unwrap();
    c.acquire_write(n0, o).unwrap();
    c.release(n0, o).unwrap();
    c.acquire_read(n1, o).unwrap();
    c.release(n1, o).unwrap();
    let snapshot: Vec<Token> = (0..3).map(|i| c.token_at(n(i), o).unwrap()).collect();
    for i in 0..3 {
        c.run_bgc(n(i), b).unwrap();
    }
    let after: Vec<Token> = (0..3).map(|i| c.token_at(n(i), o).unwrap()).collect();
    assert_eq!(snapshot, after, "tokens untouched by three collections");
    c.assert_gc_acquired_no_tokens();
}
