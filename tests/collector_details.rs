//! Pointed tests for individual sentences of the paper's Section 4.

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// §4.2: "an inconsistent copy of the object is sufficient, because
/// scanning an old version results in making a more conservative decision
/// about the referenced objects reachability, ensuring that they will not
/// be erroneously collected if not dead."
///
/// Node 1 holds a *stale* replica of H whose field still points at T; the
/// owner already cleared that field. Node 1's BGC scans the stale copy and
/// keeps its local T replica — conservative, exactly as specified.
#[test]
fn scanning_stale_replicas_is_conservative() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n0, n1) = (n(0), n(1));
    let b = c.create_bunch(n0).unwrap();
    let h = c.alloc(n0, b, &ObjSpec::with_refs(1, &[0])).unwrap();
    let t = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.write_ref(n0, h, 0, t).unwrap();
    c.add_root(n0, h);
    c.map_bunch(n1, b, n0).unwrap();
    c.add_root(n1, h);
    // Node 1 syncs once: its replica of H points at T.
    c.acquire_read(n1, h).unwrap();
    c.release(n1, h).unwrap();
    // The owner clears the reference; node 1's read token is invalidated
    // but its *bytes* still show the old pointer.
    c.acquire_write(n0, h).unwrap();
    c.write_ref(n0, h, 0, Addr::NULL).unwrap();
    c.release(n0, h).unwrap();
    assert_eq!(
        c.token_at(n1, h).unwrap(),
        Token::None,
        "stale = inconsistent copy"
    );

    // Node 1 collects on its stale view: T survives there (conservative).
    let s1 = c.run_bgc(n1, b).unwrap();
    assert_eq!(s1.reclaimed, 0, "stale scan keeps T at node 1");
    // The conservatism propagates: node 1's report lists an exiting
    // ownerPtr for T, so even the owner — whose consistent view says T is
    // dead — must keep it. Nothing live anywhere can be lost.
    let s0 = c.run_bgc(n0, b).unwrap();
    assert_eq!(s0.reclaimed, 0, "node 1's stale replica still shields T");
    // Once node 1 synchronizes on H (fresh copy without the pointer), its
    // next collection drops its T replica and stops shielding it...
    c.acquire_read(n1, h).unwrap();
    c.release(n1, h).unwrap();
    let s1 = c.run_bgc(n1, b).unwrap();
    assert_eq!(s1.reclaimed, 1, "conservatism ends at the next sync point");
    // ...and the owner finally reclaims T.
    let s0 = c.run_bgc(n0, b).unwrap();
    assert_eq!(
        s0.reclaimed, 1,
        "T dies at the owner after the shield drops"
    );
    c.assert_gc_acquired_no_tokens();
}

/// §4.3: "An inter-bunch stub will not be added to the new stub table if
/// the corresponding local object no longer includes the inter-bunch
/// reference associated with the stub."
#[test]
fn stub_dropped_when_the_reference_is_overwritten() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b1 = c.create_bunch(n0).unwrap();
    let b2 = c.create_bunch(n0).unwrap();
    let src = c.alloc(n0, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let t1 = c.alloc(n0, b2, &ObjSpec::data(1)).unwrap();
    let t2 = c.alloc(n0, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n0, src);
    c.write_ref(n0, src, 0, t1).unwrap();
    assert_eq!(c.gc.node(n0).bunch(b1).unwrap().stub_table.inter().len(), 1);
    // Re-point at t2: a second SSP appears (t1's stub is now dangling-ish
    // until the next collection rebuilds the table).
    c.write_ref(n0, src, 0, t2).unwrap();
    assert_eq!(c.gc.node(n0).bunch(b1).unwrap().stub_table.inter().len(), 2);
    // The BGC regenerates: only the live reference's stub survives.
    c.run_bgc(n0, b1).unwrap();
    let stubs = &c.gc.node(n0).bunch(b1).unwrap().stub_table.inter();
    assert_eq!(stubs.len(), 1);
    assert_eq!(stubs[0].target_addr, t2);
    // And B2's collection then reclaims the unshielded t1.
    let s = c.run_bgc(n0, b2).unwrap();
    assert_eq!(s.reclaimed, 1);
}

/// Scion target addresses are themselves rewritten when the target bunch's
/// collection relocates the protected object.
#[test]
fn scion_targets_follow_relocations() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b1 = c.create_bunch(n0).unwrap();
    let b2 = c.create_bunch(n0).unwrap();
    let src = c.alloc(n0, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n0, b2, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, tgt, 0, 5).unwrap();
    c.add_root(n0, src);
    c.write_ref(n0, src, 0, tgt).unwrap();
    let before = c.gc.node(n0).bunch(b2).unwrap().scion_table.inter()[0].target_addr;
    // Collect B2: the target (owned locally) moves; the scion is a root, so
    // the object survives and the scion's address is updated.
    c.run_bgc(n0, b2).unwrap();
    let after = c.gc.node(n0).bunch(b2).unwrap().scion_table.inter()[0].target_addr;
    assert_ne!(before, after, "the scion followed the copy");
    assert_eq!(c.read_data(n0, tgt, 0).unwrap(), 5);
    // B1's source still reads the target through forwarding; after B1's own
    // collection its field points directly at the new address.
    c.run_bgc(n0, b1).unwrap();
    let src_now = c.gc.node(n0).directory.resolve(src);
    assert_eq!(
        bmx_repro::addr::object::read_ref_field(&c.mems[0], src_now, 0).unwrap(),
        after
    );
}

/// To-space overflow: collecting a bunch whose live data exceeds one
/// segment spills into additional to-space segments transparently.
#[test]
fn to_space_spills_across_segments() {
    let mut cfg = ClusterConfig::with_nodes(1);
    cfg.segment_words = 256; // tiny segments
    let mut c = Cluster::new(cfg);
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    // ~40 objects x 5 words each = 200 words live, spread over several
    // 256-word segments by the builder.
    let list = bmx_repro::workloads::lists::build_list(&mut c, n0, b, 40, 0).unwrap();
    let rid = c.add_root(n0, list.head);
    let segs_before = c.server.borrow().bunch(b).unwrap().segments.len();
    let s = c.run_bgc(n0, b).unwrap();
    assert_eq!(s.copied, 40);
    let segs_after = c.server.borrow().bunch(b).unwrap().segments.len();
    assert!(segs_after > segs_before, "to-space needed fresh segments");
    let head = c.root(n0, rid).unwrap();
    assert_eq!(
        bmx_repro::workloads::lists::read_payloads(&c, n0, head).unwrap(),
        (0..40).collect::<Vec<_>>()
    );
}

/// Mutator roots pointing outside the collected group are ignored by that
/// collection (per-bunch independence) but keep their own bunches' objects
/// alive in theirs.
#[test]
fn roots_are_scoped_to_the_collected_group() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b1 = c.create_bunch(n0).unwrap();
    let b2 = c.create_bunch(n0).unwrap();
    let o1 = c.alloc(n0, b1, &ObjSpec::data(1)).unwrap();
    let o2 = c.alloc(n0, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n0, o1);
    c.add_root(n0, o2);
    let s1 = c.run_bgc(n0, b1).unwrap();
    assert_eq!(s1.live, 1, "only B1's object counted");
    let s2 = c.run_bgc(n0, b2).unwrap();
    assert_eq!(s2.live, 1, "only B2's object counted");
}

/// Objects the mutator re-acquires after losing their replicas (reclaimed
/// locally, still live remotely) are re-materialized by the grant.
#[test]
fn locally_reclaimed_replicas_can_be_refetched() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n0, n1) = (n(0), n(1));
    let b = c.create_bunch(n0).unwrap();
    let o = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, o, 0, 31).unwrap();
    c.add_root(n0, o);
    c.map_bunch(n1, b, n0).unwrap();
    // Node 1 never roots O: its replica dies at its first collection.
    let s = c.run_bgc(n1, b).unwrap();
    assert_eq!(s.reclaimed, 1);
    assert!(c.oid_at_local(n1, o).is_err(), "replica gone at node 1");
    // A later acquire re-materializes it through the grant.
    c.acquire_read(n1, o).unwrap();
    assert_eq!(c.read_data(n1, o, 0).unwrap(), 31);
    c.release(n1, o).unwrap();
}
