//! Trace-backed invariant checking against live cluster runs.
//!
//! The queries in `bmx_trace::query` encode the paper's temporal safety
//! claims (scion retirement only after a covering reachability epoch,
//! address re-alignment before mutator access to a relocated object, the
//! Section-5 acquire invariants). Here they run against the event stream
//! of a real migration-plus-collection scenario — not hand-built records —
//! so a regression in the protocol ordering, or in the instrumentation's
//! placement, turns a green query red.
//!
//! This file also pins two tier-1 properties of the tracing subsystem
//! itself: a traced run is bit-identical to an untraced run with the same
//! seed (tracing is observational only), and the Chrome exporter produces
//! JSON that a trace viewer will accept.

use bmx_repro::prelude::*;
use bmx_repro::trace::{self, TraceEvent};
use bmx_repro::workloads::lists;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// A three-node run exercising every traced subsystem: a shared bunch
/// replicated everywhere, ownership migration away from the root holder,
/// a copying collection at the root (relocations piggy-back outward), and
/// post-collection accesses at the replicas (lazy address update on
/// acquire). Returns a digest of everything that must be seed-determined.
fn migration_scenario(seed: u64) -> Vec<u64> {
    let mut net = NetworkConfig::lossless(1);
    net.seed = seed;
    let cfg = ClusterConfig {
        nodes: 3,
        net,
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));

    let shared = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, shared, 4, 0).unwrap();
    c.add_root(n0, list.head);
    let objs: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n0, shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).unwrap();
    c.map_bunch(n2, shared, n0).unwrap();

    // Migrate ownership of each object to a replica and mutate there.
    for (i, &o) in objs.iter().enumerate() {
        let site = if i % 2 == 0 { n1 } else { n2 };
        c.acquire_write(site, o).unwrap();
        c.write_data(site, o, 1, 100 + i as u64).unwrap();
        c.release(site, o).unwrap();
    }
    // Collect at the root holder: survivors relocate, and the relocation
    // records ride outward on subsequent protocol traffic.
    c.run_bgc(n0, shared).unwrap();
    // Post-collection accesses from every node re-align addresses lazily.
    for (i, &o) in objs.iter().enumerate() {
        for &site in &[n2, n0, n1] {
            c.acquire_read(site, o).unwrap();
            assert_eq!(c.read_data(site, o, 1).unwrap(), 100 + i as u64);
            c.release(site, o).unwrap();
        }
    }
    // A second collection plus a re-read keeps the cleaner and the
    // retirement path in the trace.
    c.run_bgc(n0, shared).unwrap();
    assert_eq!(lists::read_payloads(&c, n0, list.head).unwrap().len(), 4);

    let mut digest: Vec<u64> = Vec::new();
    for i in 0..3 {
        for k in StatKind::ALL {
            digest.push(c.stats[i].get(k));
        }
    }
    for cl in MsgClass::ALL {
        let s = c.net.class_stats(cl);
        digest.extend([s.sent, s.dropped, s.duplicated]);
    }
    digest.push(c.net.now());
    digest
}

/// The three temporal invariants hold on the event stream of a real
/// migration-and-collection run, and the stream actually contains the
/// events the queries reason about (an empty trace would be vacuously
/// green).
#[test]
fn invariant_queries_hold_on_a_real_run() {
    trace::install_vec();
    migration_scenario(7);
    let records = trace::take();
    trace::disable();
    assert!(
        records.len() > 100,
        "expected a substantial trace, got {} records",
        records.len()
    );
    let has = |pred: &dyn Fn(&TraceEvent) -> bool| records.iter().any(|r| pred(&r.event));
    assert!(has(&|e| matches!(e, TraceEvent::TokenGrant { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::AcquireComplete { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::OwnershipMigrate { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Relocate { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::AddrUpdate { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ReportPublish { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ReportApply { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::BgcPhase { .. })));

    let scion = trace::query::scion_retirement_violations(&records);
    assert!(scion.is_empty(), "scion retirement violations: {scion:?}");
    let addr = trace::query::address_update_violations(&records);
    assert!(addr.is_empty(), "address update violations: {addr:?}");
    let acq = trace::query::acquire_invariant_violations(&records);
    assert!(acq.is_empty(), "acquire invariant violations: {acq:?}");
}

/// Tier-1 smoke: the same seed produces the same run whether or not a
/// recorder is installed — tracing reads the simulation, never steers it.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    trace::disable();
    let untraced = migration_scenario(42);
    trace::install_ring(4096);
    let traced = migration_scenario(42);
    let records = trace::take();
    trace::disable();
    assert!(!records.is_empty(), "the traced run actually recorded");
    assert_eq!(
        untraced, traced,
        "tracing perturbed a counter, message, or the clock"
    );
}

/// The Chrome exporter output for a real run survives a strict JSON parse
/// and carries well-formed trace_event entries.
#[test]
fn chrome_export_of_a_real_run_validates() {
    trace::install_vec();
    migration_scenario(3);
    let records = trace::take();
    trace::disable();
    let json = trace::chrome::export(&records);
    let events = trace::chrome::validate(&json).expect("well-formed Chrome trace");
    assert_eq!(events, records.len(), "one instant event per record");
    let timeline = trace::query::human_timeline(&records);
    assert_eq!(timeline.lines().count(), records.len());
}
