//! Trace-backed invariant checking against live cluster runs.
//!
//! The queries in `bmx_trace::query` encode the paper's temporal safety
//! claims (scion retirement only after a covering reachability epoch,
//! address re-alignment before mutator access to a relocated object, the
//! Section-5 acquire invariants). Here they run against the event stream
//! of a real migration-plus-collection scenario — not hand-built records —
//! so a regression in the protocol ordering, or in the instrumentation's
//! placement, turns a green query red.
//!
//! This file also pins two tier-1 properties of the tracing subsystem
//! itself: a traced run is bit-identical to an untraced run with the same
//! seed (tracing is observational only), and the Chrome exporter produces
//! JSON that a trace viewer will accept.

use bmx_repro::prelude::*;
use bmx_repro::trace::{self, TraceEvent, TraceRecord};
use bmx_repro::workloads::{churn, lists};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// A three-node run exercising every traced subsystem: a shared bunch
/// replicated everywhere, ownership migration away from the root holder,
/// a copying collection at the root (relocations piggy-back outward), and
/// post-collection accesses at the replicas (lazy address update on
/// acquire). Returns a digest of everything that must be seed-determined.
fn migration_scenario(seed: u64) -> Vec<u64> {
    let mut net = NetworkConfig::lossless(1);
    net.seed = seed;
    let cfg = ClusterConfig {
        nodes: 3,
        net,
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));

    let shared = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, shared, 4, 0).unwrap();
    c.add_root(n0, list.head);
    let objs: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n0, shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).unwrap();
    c.map_bunch(n2, shared, n0).unwrap();

    // Migrate ownership of each object to a replica and mutate there.
    for (i, &o) in objs.iter().enumerate() {
        let site = if i % 2 == 0 { n1 } else { n2 };
        c.acquire_write(site, o).unwrap();
        c.write_data(site, o, 1, 100 + i as u64).unwrap();
        c.release(site, o).unwrap();
    }
    // Collect at the root holder: survivors relocate, and the relocation
    // records ride outward on subsequent protocol traffic.
    c.run_bgc(n0, shared).unwrap();
    // Post-collection accesses from every node re-align addresses lazily.
    for (i, &o) in objs.iter().enumerate() {
        for &site in &[n2, n0, n1] {
            c.acquire_read(site, o).unwrap();
            assert_eq!(c.read_data(site, o, 1).unwrap(), 100 + i as u64);
            c.release(site, o).unwrap();
        }
    }
    // A second collection plus a re-read keeps the cleaner and the
    // retirement path in the trace.
    c.run_bgc(n0, shared).unwrap();
    assert_eq!(lists::read_payloads(&c, n0, list.head).unwrap().len(), 4);

    let mut digest: Vec<u64> = Vec::new();
    for i in 0..3 {
        for k in StatKind::ALL {
            digest.push(c.stats[i].get(k));
        }
    }
    for cl in MsgClass::ALL {
        let s = c.net.class_stats(cl);
        digest.extend([s.sent, s.dropped, s.duplicated]);
    }
    digest.push(c.net.now());
    digest
}

/// The three temporal invariants hold on the event stream of a real
/// migration-and-collection run, and the stream actually contains the
/// events the queries reason about (an empty trace would be vacuously
/// green).
#[test]
fn invariant_queries_hold_on_a_real_run() {
    trace::install_vec();
    migration_scenario(7);
    let records = trace::take();
    trace::disable();
    assert!(
        records.len() > 100,
        "expected a substantial trace, got {} records",
        records.len()
    );
    let has = |pred: &dyn Fn(&TraceEvent) -> bool| records.iter().any(|r| pred(&r.event));
    assert!(has(&|e| matches!(e, TraceEvent::TokenGrant { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::AcquireComplete { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::OwnershipMigrate { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Relocate { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::AddrUpdate { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ReportPublish { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ReportApply { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::BgcPhase { .. })));

    let scion = trace::query::scion_retirement_violations(&records);
    assert!(scion.is_empty(), "scion retirement violations: {scion:?}");
    let addr = trace::query::address_update_violations(&records);
    assert!(addr.is_empty(), "address update violations: {addr:?}");
    let acq = trace::query::acquire_invariant_violations(&records);
    assert!(acq.is_empty(), "acquire invariant violations: {acq:?}");
}

/// A run through an amnesia crash on an otherwise lossless network: the
/// victim loses its volatile state mid-workload, replays its RVM
/// checkpoint, and rejoins under a fresh epoch. Returns the victim so the
/// caller can anchor its assertions.
fn recovery_scenario(seed: u64) -> NodeId {
    const CRASH_START: u64 = 900;
    const CRASH_END: u64 = 1100;
    const RUN_UNTIL: u64 = 1500;
    let victim = n(2);

    let dir = std::env::temp_dir().join(format!(
        "bmx-trace-recovery-{seed:#x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut net = NetworkConfig::lossless(1).with_fault(FaultPlan::none().crash_amnesia(
        victim,
        CRASH_START,
        CRASH_END,
    ));
    net.seed = seed;
    let cfg = ClusterConfig {
        nodes: 3,
        net,
        retry: Some(RetryPolicy {
            initial_interval: 4,
            backoff: 2,
            max_interval: 32,
            budget: 6,
        }),
        persist: Some(PersistConfig {
            dir: dir.clone(),
            truncate_log_bytes: None,
        }),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));

    let mut sites = Vec::new();
    for &node in &[n0, n1, n2] {
        let b = c.create_bunch(node).unwrap();
        let reg = c.alloc(node, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(node, reg);
        sites.push((node, b, reg));
    }
    let shared = c.create_bunch(n0).unwrap();
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n0, shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).unwrap();
    c.map_bunch(n2, shared, n0).unwrap();
    assert!(c.net.now() < CRASH_START, "setup ran into the crash window");

    let mut round = 0usize;
    while c.net.now() < RUN_UNTIL {
        let up: Vec<NodeId> = (0..c.nodes())
            .map(NodeId)
            .filter(|&p| !c.net.is_down(p) && !c.in_recovery(p))
            .collect();
        for &(node, bunch, registry) in &sites {
            // A home bunch exists at its node only while checkpointed state
            // covers it — skip churn (not an error) until recovery re-adds it.
            if up.contains(&node) && c.gc.node(node).bunches.contains_key(&bunch) {
                churn::register_churn(&mut c, node, bunch, registry, 2).unwrap();
            }
        }
        for (i, &obj) in migrate.iter().enumerate() {
            let site = up[(round + i) % up.len()];
            match c.acquire_write(site, obj) {
                Ok(()) => {
                    let v = c.read_data(site, obj, 1).unwrap();
                    c.write_data(site, obj, 1, v + 1).unwrap();
                    c.release(site, obj).unwrap();
                }
                Err(BmxError::WouldBlock { .. }) | Err(BmxError::OwnerUnknown { .. }) => {}
                Err(e) => panic!("migration hop failed: {e}"),
            }
        }
        // Collections rotate over the home bunches and the shared bunch at
        // every site: the home-bunch passes keep each node's checkpoint
        // fresh (what the victim replays from RVM), and the shared-bunch
        // passes make the victim publish reports pre-crash — the epoch
        // floor the survivors hand back at rejoin.
        let mut targets: Vec<(NodeId, BunchId)> = sites
            .iter()
            .map(|&(node, bunch, _)| (node, bunch))
            .collect();
        for &(node, _, _) in &sites {
            targets.push((node, shared));
        }
        let (cnode, cbunch) = targets[round % targets.len()];
        if up.contains(&cnode) && c.gc.node(cnode).bunches.contains_key(&cbunch) {
            c.run_bgc(cnode, cbunch).unwrap();
        }
        c.step(20).unwrap();
        round += 1;
    }
    c.settle(5_000).unwrap();
    assert!(!c.in_recovery(victim), "the rejoin handshake completed");
    assert_eq!(
        c.recovery_log.iter().filter(|r| r.node == victim).count(),
        1,
        "exactly one recovery at the victim"
    );
    let _ = std::fs::remove_dir_all(&dir);
    victim
}

/// The recovery plane traces coherently on a real amnesia-crash run: the
/// three events appear in pipeline order at the victim with one consistent
/// rejoin epoch, the post-crash epoch rule holds on the live stream, and —
/// the teeth check — a stale retirement spliced into that same stream is
/// flagged by the checker.
#[test]
fn recovery_events_and_post_crash_epoch_rule_on_a_real_run() {
    trace::install_vec();
    let victim = recovery_scenario(11);
    let records = trace::take();
    trace::disable();

    // The victim's own timeline: RecoveryBegin, then every RejoinEpoch,
    // then RecoveryComplete, all under the same rejoin epoch.
    let mine: Vec<&TraceRecord> = records.iter().filter(|r| r.node == victim).collect();
    let begin = mine
        .iter()
        .position(|r| matches!(r.event, TraceEvent::RecoveryBegin { .. }))
        .expect("RecoveryBegin traced at the victim");
    let complete = mine
        .iter()
        .position(|r| matches!(r.event, TraceEvent::RecoveryComplete { .. }))
        .expect("RecoveryComplete traced at the victim");
    assert!(begin < complete, "recovery completes after it begins");
    let begin_epoch = match mine[begin].event {
        TraceEvent::RecoveryBegin { epoch } => epoch,
        _ => unreachable!(),
    };
    let complete_epoch = match mine[complete].event {
        TraceEvent::RecoveryComplete { epoch } => epoch,
        _ => unreachable!(),
    };
    assert_eq!(begin_epoch, complete_epoch, "one rejoin epoch end to end");
    let rejoins: Vec<usize> = mine
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.event, TraceEvent::RejoinEpoch { .. }))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !rejoins.is_empty(),
        "the survivors handed back at least one per-bunch epoch floor"
    );
    for i in rejoins {
        assert!(
            begin < i && i < complete,
            "RejoinEpoch sits inside the recovery window (begin={begin}, \
             rejoin={i}, complete={complete})"
        );
    }

    // The live stream satisfies the post-crash epoch rule…
    let post = trace::query::post_crash_epoch_violations(&records);
    assert!(post.is_empty(), "post-crash epoch violations: {post:?}");

    // …and the checker is not vacuously green: replaying a pre-crash report
    // epoch as a retirement after the recovery must be flagged. The floor
    // the checker freezes is the max epoch applied from the victim before
    // RecoveryBegin, so any such epoch is by construction stale.
    let begin_lamport = mine[begin].lamport;
    let stale = records
        .iter()
        .filter(|r| r.lamport < begin_lamport)
        .find_map(|r| match r.event {
            TraceEvent::ReportApply {
                source,
                bunch,
                epoch,
            } if source == victim => Some((bunch, epoch)),
            _ => None,
        });
    let (bunch, epoch) = stale.expect(
        "a pre-crash report from the victim was applied somewhere \
         (otherwise the scenario never fed the checker a floor)",
    );
    let last = records.iter().map(|r| (r.lamport, r.seq)).max().unwrap();
    let mut tampered = records.clone();
    tampered.push(TraceRecord {
        node: n(0),
        tick: last.0 + 1,
        lamport: last.0 + 1,
        seq: last.1 + 1,
        event: TraceEvent::ScionRetired {
            source: victim,
            bunch,
            epoch,
            count: 1,
        },
    });
    let flagged = trace::query::post_crash_epoch_violations(&tampered);
    assert_eq!(
        flagged.len(),
        1,
        "a stale post-recovery retirement must be flagged"
    );
}

/// Tier-1 smoke: the same seed produces the same run whether or not a
/// recorder is installed — tracing reads the simulation, never steers it.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    trace::disable();
    let untraced = migration_scenario(42);
    trace::install_ring(4096);
    let traced = migration_scenario(42);
    let records = trace::take();
    trace::disable();
    assert!(!records.is_empty(), "the traced run actually recorded");
    assert_eq!(
        untraced, traced,
        "tracing perturbed a counter, message, or the clock"
    );
}

/// A real watchdog alarm justifies itself causally: the `MetricAlarm`
/// event cites a witness stamp its node actually produced, strictly before
/// the alarm, with a sane window start — and the checker flags a forged
/// alarm whose witness points at nothing.
#[test]
fn metric_alarm_events_satisfy_the_happens_before_rule() {
    use bmx_repro::metrics::{self, watchdog::WatchdogConfig};

    trace::install_vec();
    metrics::install_with(WatchdogConfig {
        fromspace_window: 200,
        ..WatchdogConfig::default()
    });
    // A collection retires a segment into from-space; nothing ever drains
    // it, so the leak watchdog must fire within the (shortened) window.
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let b = c.create_bunch(n(0)).unwrap();
    let root = c.alloc(n(0), b, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n(0), root);
    let junk = c.alloc(n(0), b, &ObjSpec::data(4)).unwrap();
    c.write_ref(n(0), root, 0, junk).unwrap();
    c.run_bgc(n(0), b).unwrap();
    c.step(600).unwrap();
    metrics::disable();
    let records = trace::take();
    trace::disable();

    let alarm = records
        .iter()
        .find(|r| matches!(r.event, TraceEvent::MetricAlarm { .. }))
        .expect("the withheld drain raised an alarm event");
    let bad = trace::query::metric_alarm_hb_violations(&records);
    assert!(bad.is_empty(), "alarm HB violations: {bad:?}");

    // Forge the same alarm with a witness stamp the node never produced:
    // the checker must reject it.
    let mut forged = records.clone();
    let mut fake = *alarm;
    if let TraceEvent::MetricAlarm {
        ref mut witness_lamport,
        ..
    } = fake.event
    {
        *witness_lamport = u64::MAX;
    }
    fake.lamport += 1;
    fake.seq += 1;
    forged.push(fake);
    assert_eq!(
        trace::query::metric_alarm_hb_violations(&forged).len(),
        1,
        "the forged witness must be flagged"
    );
}

/// The Chrome exporter output for a real run survives a strict JSON parse
/// and carries well-formed trace_event entries.
#[test]
fn chrome_export_of_a_real_run_validates() {
    trace::install_vec();
    migration_scenario(3);
    let records = trace::take();
    trace::disable();
    let json = trace::chrome::export(&records);
    let events = trace::chrome::validate(&json).expect("well-formed Chrome trace");
    assert_eq!(events, records.len(), "one instant event per record");
    let timeline = trace::query::human_timeline(&records);
    assert_eq!(timeline.lines().count(), records.len());
}
