//! The incremental (O'Toole-style) collector: bounded work increments,
//! graying write barrier, short flip — interleaved with live mutation.

use bmx_repro::prelude::*;
use bmx_repro::workloads::lists;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// A full incremental cycle with no mutation equals the monolithic
/// collection.
#[test]
fn incremental_matches_monolithic_when_quiescent() {
    let n0 = n(0);
    let run_monolithic = || {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let b = c.create_bunch(n0).unwrap();
        let list = lists::build_list(&mut c, n0, b, 30, 0).unwrap();
        c.add_root(n0, list.head);
        lists::truncate_list(&mut c, n0, &list, 10).unwrap();
        c.run_bgc(n0, b).unwrap()
    };
    let run_incremental = || {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let b = c.create_bunch(n0).unwrap();
        let list = lists::build_list(&mut c, n0, b, 30, 0).unwrap();
        c.add_root(n0, list.head);
        lists::truncate_list(&mut c, n0, &list, 10).unwrap();
        c.start_incremental(n0, &[b]).unwrap();
        let mut steps = 0;
        while !c.incremental_step(n0, 3).unwrap() {
            steps += 1;
            assert!(steps < 1000, "must converge");
        }
        assert!(steps >= 2, "the budget actually bounded the work");
        c.incremental_flip(n0).unwrap()
    };
    let mono = run_monolithic();
    let inc = run_incremental();
    assert_eq!(mono.live, inc.live);
    assert_eq!(mono.copied, inc.copied);
    assert_eq!(mono.reclaimed, inc.reclaimed);
}

/// The classic incremental-GC hazard: a reference written into an
/// already-scanned object, while the only other path to the target dies.
/// The graying barrier must keep the target alive.
#[test]
fn graying_barrier_prevents_lost_objects() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    // root -> a ; holder h (rooted) ; b_obj reachable only via a.1 .
    let a = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0, 1])).unwrap();
    let h = c.alloc(n0, b, &ObjSpec::with_refs(1, &[0])).unwrap();
    let hidden = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, hidden, 0, 424242).unwrap();
    c.write_ref(n0, a, 1, hidden).unwrap();
    c.add_root(n0, a);
    c.add_root(n0, h);

    c.start_incremental(n0, &[b]).unwrap();
    // Step until `a` and `h` have certainly been scanned (tiny heap: a few
    // objects per step is enough; we deliberately over-step).
    c.incremental_step(n0, 2).unwrap();
    // Mutator: move the only reference to `hidden` from `a` (already
    // scanned) into `h`, then clear it from `a`. Without the barrier the
    // trace would never see `hidden` through `h`.
    c.write_ref(n0, h, 0, hidden).unwrap();
    c.write_ref(n0, a, 1, Addr::NULL).unwrap();
    while !c.incremental_step(n0, 2).unwrap() {}
    let stats = c.incremental_flip(n0).unwrap();
    assert_eq!(stats.reclaimed, 0, "nothing was garbage");
    // `hidden` survived and moved with everyone else.
    assert_eq!(c.read_data(n0, hidden, 0).unwrap(), 424242);
    assert_eq!(
        c.read_ref(n0, h, 0).unwrap(),
        c.gc.node(n0).directory.resolve(hidden)
    );
}

/// Mutation *between* increments: payload writes land on whichever copy is
/// current, and new allocations stored into the live graph survive.
#[test]
fn mutation_interleaves_with_increments() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, b, 20, 0).unwrap();
    c.add_root(n0, list.head);

    c.start_incremental(n0, &[b]).unwrap();
    let mut round = 0u64;
    let mut appended = Vec::new();
    loop {
        let ready = c.incremental_step(n0, 4).unwrap();
        // Interleaved mutator work: bump payloads and append a new cell.
        let cell = list.cells[(round as usize) % 20];
        c.write_data(n0, cell, lists::PAYLOAD, 500 + round).unwrap();
        let fresh = c
            .alloc(n0, b, &ObjSpec::with_refs(2, &[lists::NEXT]))
            .unwrap();
        c.write_data(n0, fresh, lists::PAYLOAD, 9000 + round)
            .unwrap();
        // Splice it at the head side: tail of the new cell = old second.
        let second = c.read_ref(n0, list.cells[0], lists::NEXT).unwrap();
        c.write_ref(n0, fresh, lists::NEXT, second).unwrap();
        c.write_ref(n0, list.cells[0], lists::NEXT, fresh).unwrap();
        appended.push(fresh);
        round += 1;
        if ready {
            break;
        }
        assert!(round < 1000, "must converge");
    }
    let stats = c.incremental_flip(n0).unwrap();
    // Everything reachable survived: 20 original + all appended cells.
    let head = c.gc.node(n0).directory.resolve(list.head);
    let payloads = lists::read_payloads(&c, n0, head).unwrap();
    assert_eq!(payloads.len(), 20 + appended.len());
    assert_eq!(stats.live as usize, 20 + appended.len());
    for (i, &f) in appended.iter().enumerate() {
        assert_eq!(c.read_data(n0, f, lists::PAYLOAD).unwrap(), 9000 + i as u64);
    }
    c.assert_gc_acquired_no_tokens();
}

/// A root re-pointed during collection grays its new target.
#[test]
fn root_updates_gray_their_targets() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    let first = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    let second = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, second, 0, 77).unwrap();
    let root = c.add_root(n0, first);
    c.start_incremental(n0, &[b]).unwrap();
    // Scan `first`, then re-point the root at `second` (previously
    // unreachable from any root) and drop `first`.
    c.incremental_step(n0, 1).unwrap();
    c.set_root(n0, root, second);
    while !c.incremental_step(n0, 2).unwrap() {}
    c.incremental_flip(n0).unwrap();
    assert_eq!(
        c.read_data(n0, second, 0).unwrap(),
        77,
        "second must survive"
    );
}

/// Monolithic collection is refused while an incremental one is active,
/// and a second incremental start is refused too.
#[test]
fn concurrent_collections_are_refused() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    let o = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.add_root(n0, o);
    c.start_incremental(n0, &[b]).unwrap();
    assert!(matches!(
        c.run_bgc(n0, b),
        Err(BmxError::CollectorBusy { .. })
    ));
    assert!(matches!(
        c.start_incremental(n0, &[b]),
        Err(BmxError::CollectorBusy { .. })
    ));
    while !c.incremental_step(n0, 8).unwrap() {}
    c.incremental_flip(n0).unwrap();
    // After the flip, a normal collection works again.
    assert!(c.run_bgc(n0, b).is_ok());
}

/// The flip's work (and hence the pause) is bounded by the mutation
/// backlog, not the heap: with no backlog, a large traced heap flips with
/// zero residual tracing.
#[test]
fn flip_after_quiescent_steps_is_cheap() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, b, 300, 0).unwrap();
    c.add_root(n0, list.head);
    c.start_incremental(n0, &[b]).unwrap();
    while !c.incremental_step(n0, 16).unwrap() {}
    // All tracing happened in the steps; the flip only runs the terminal
    // phases. Copied counts prove the steps did the work.
    let stats = c.incremental_flip(n0).unwrap();
    assert_eq!(stats.copied, 300);
    assert_eq!(stats.live, 300);
}
