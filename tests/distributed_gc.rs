//! Cross-node collector behaviour beyond the worked figures: acyclic
//! distributed garbage, replicated-bunch collections interleaved with
//! mutation, and the from-space reuse protocol.

use bmx_repro::prelude::*;
use bmx_repro::workloads::lists;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Acyclic distributed collection (Section 6): an object in bunch B2 is
/// kept alive solely by a remote inter-bunch stub in B1; when the source
/// reference dies, the reachability tables cascade and B2's object falls.
#[test]
fn acyclic_distributed_garbage_is_collected() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    // Cross-node inter-bunch reference: scion-message to N2.
    c.write_ref(n1, src, 0, tgt).unwrap();
    assert_eq!(
        c.gc.node(n2).bunch(b2).unwrap().scion_table.inter().len(),
        1
    );

    // While the reference lives, B2's collection keeps the target.
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 0);
    assert_eq!(s.live, 1);

    // The source drops the reference; B1's BGC rebuilds its stub table
    // without the stub, the cleaner at N2 prunes the scion, and the next
    // B2 collection reclaims the target.
    c.write_ref(n1, src, 0, Addr::NULL).unwrap();
    c.run_bgc(n1, b1).unwrap();
    assert!(c
        .gc
        .node(n2)
        .bunch(b2)
        .unwrap()
        .scion_table
        .inter()
        .is_empty());
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 1);
    c.assert_gc_acquired_no_tokens();
}

/// A dead source *object* (not just a dead reference) has the same effect:
/// stub retention requires the source object to be live.
#[test]
fn dead_source_object_releases_its_stubs() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    let root = c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();

    c.remove_root(n1, root);
    c.run_bgc(n1, b1).unwrap(); // src dies, stub dropped
    assert!(c
        .gc
        .node(n1)
        .bunch(b1)
        .unwrap()
        .stub_table
        .inter()
        .is_empty());
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 1);
}

/// Independent BGCs on different replicas of the same bunch, interleaved
/// with mutation: the shared list stays intact on every node, payloads and
/// structure preserved, with zero GC token traffic.
#[test]
fn replicated_bunch_collections_interleave_with_mutation() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(3));
    let n1 = n(0);
    let b = c.create_bunch(n1).unwrap();
    let list = lists::build_list(&mut c, n1, b, 12, 0).unwrap();
    c.add_root(n1, list.head);
    c.map_bunch(n(1), b, n1).unwrap();
    c.map_bunch(n(2), b, n1).unwrap();
    c.add_root(n(1), list.head);
    c.add_root(n(2), list.head);

    // Spread ownership: node 1 takes cells 4..8, node 2 takes cells 8..12.
    for i in 4..8 {
        c.acquire_write(n(1), list.cells[i]).unwrap();
        c.release(n(1), list.cells[i]).unwrap();
    }
    for i in 8..12 {
        c.acquire_write(n(2), list.cells[i]).unwrap();
        c.release(n(2), list.cells[i]).unwrap();
    }

    // Interleave: collect on each node, mutating between collections.
    for round in 0..3u64 {
        for node in [n1, n(1), n(2)] {
            c.run_bgc(node, b).unwrap();
            // Each BGC copies exactly the cells that node owns (4 each) —
            // independence of replicas (Section 4.1).
        }
        // Mutate a payload through the DSM after the collections.
        let cell = list.cells[(round as usize) % 12];
        let writer = n((round % 3) as u32);
        c.acquire_write(writer, cell).unwrap();
        c.write_data(writer, cell, lists::PAYLOAD, 1000 + round)
            .unwrap();
        c.release(writer, cell).unwrap();
    }

    // Every node still reads a structurally intact list with the latest
    // payloads (acquire gives the consistent copy).
    for node in [n1, n(1), n(2)] {
        for (i, &cell) in list.cells.iter().enumerate() {
            c.acquire_read(node, cell).unwrap();
            let v = c.read_data(node, cell, lists::PAYLOAD).unwrap();
            c.release(node, cell).unwrap();
            if i < 3 {
                assert_eq!(v, 1000 + i as u64, "mutated payload at cell {i}");
            } else {
                assert_eq!(v, i as u64, "original payload at cell {i}");
            }
        }
    }
    c.assert_gc_acquired_no_tokens();
}

/// The copy counts of independent replica collections: each node copies
/// exactly what it owns, scans the rest (Section 4.2).
#[test]
fn each_replica_copies_exactly_its_owned_objects() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b = c.create_bunch(n1).unwrap();
    let list = lists::build_list(&mut c, n1, b, 10, 0).unwrap();
    c.add_root(n1, list.head);
    c.map_bunch(n2, b, n1).unwrap();
    c.add_root(n2, list.head);
    for i in 0..5 {
        c.acquire_write(n2, list.cells[i]).unwrap();
        c.release(n2, list.cells[i]).unwrap();
    }
    let s2 = c.run_bgc(n2, b).unwrap();
    assert_eq!(s2.copied, 5, "node 2 owns the first five cells");
    assert_eq!(s2.scanned, 5);
    let s1 = c.run_bgc(n1, b).unwrap();
    assert_eq!(s1.copied, 5, "node 1 owns the last five");
    assert_eq!(s1.scanned, 5);
    // Both lists walk fine afterwards.
    assert_eq!(lists::read_payloads(&c, n1, list.head).unwrap().len(), 10);
    assert_eq!(lists::read_payloads(&c, n2, list.head).unwrap().len(), 10);
}

/// From-space reuse (Section 4.5): after collections on both replicas and
/// the explicit address-change/copy-request round, the retired segments are
/// wiped and return to the allocation pool.
#[test]
fn from_space_reuse_protocol_reclaims_segments() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b = c.create_bunch(n1).unwrap();
    let list = lists::build_list(&mut c, n1, b, 8, 0).unwrap();
    let head_root = c.add_root(n1, list.head);
    c.map_bunch(n2, b, n1).unwrap();
    // Node 2 owns half the cells.
    for i in 4..8 {
        c.acquire_write(n2, list.cells[i]).unwrap();
        c.release(n2, list.cells[i]).unwrap();
    }
    let head_root_n2 = c.add_root(n2, list.head);

    // N1's BGC copies its four owned cells; the from-space still holds
    // N2-owned live objects and forwarding headers.
    c.run_bgc(n1, b).unwrap();
    let pending = c.gc.node(n1).bunch(b).unwrap().pending_from.clone();
    assert!(!pending.is_empty(), "retired from-space segments exist");

    // The reuse protocol: copy-requests to N2, address changes around,
    // then the segments are wiped and reusable.
    let done = c.reuse_from_space(n1, b).unwrap();
    assert!(done, "reuse completed");
    let brs = c.gc.node(n1).bunch(b).unwrap();
    assert!(brs.pending_from.is_empty());
    for &sid in &pending {
        let seg = c.mems[0].segment(sid).unwrap();
        assert_eq!(seg.object_map.count_ones(), 0, "segment wiped");
        assert_eq!(seg.alloc_cursor, 0);
        assert!(
            brs.alloc_segments.contains(&sid),
            "segment back in the pool"
        );
    }
    // The list is still fully intact on both nodes. At N1 the old head
    // address was retired with the wiped segment, so the walk starts from
    // the (BGC-updated) root — stale raw addresses are exactly what the
    // reuse protocol is allowed to invalidate.
    let head_n1 = c.root(n1, head_root).unwrap();
    assert_ne!(
        head_n1, list.head,
        "the root was rewritten to the to-space copy"
    );
    assert_eq!(lists::read_payloads(&c, n1, head_n1).unwrap().len(), 8);
    // N2's replica of the retired segment was wiped by the retire round, so
    // its walk likewise starts from its rewritten root.
    let head_n2 = c.root(n2, head_root_n2).unwrap();
    assert_eq!(lists::read_payloads(&c, n2, head_n2).unwrap().len(), 8);
    // And allocation can use the recycled segment.
    let extra = c.alloc(n1, b, &ObjSpec::data(4)).unwrap();
    c.write_data(n1, extra, 0, 31).unwrap();
    assert_eq!(c.read_data(n1, extra, 0).unwrap(), 31);
    c.assert_gc_acquired_no_tokens();
}

/// Ownership acquired *after* a collection leaves the object in the old
/// owner's pending from-space; the reuse protocol copies it out locally.
#[test]
fn reuse_copies_out_objects_owned_since_the_collection() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b = c.create_bunch(n1).unwrap();
    let o = c.alloc(n1, b, &ObjSpec::data(1)).unwrap();
    c.write_data(n1, o, 0, 42).unwrap();
    c.map_bunch(n2, b, n1).unwrap();
    c.add_root(n2, o);
    // N2 takes ownership, then N1's BGC runs: O is non-owned at N1 and N1
    // has no root for it... keep it alive at N1 via N2's entering pointer.
    c.acquire_write(n2, o).unwrap();
    c.release(n2, o).unwrap();
    c.add_root(n1, o);
    c.run_bgc(n1, b).unwrap(); // O stays in N1's from-space (N2 owns it)
                               // Now N1 re-acquires ownership; O sits in pending from-space but is
                               // locally owned.
    c.acquire_write(n1, o).unwrap();
    c.release(n1, o).unwrap();
    let done = c.reuse_from_space(n1, b).unwrap();
    assert!(done);
    assert_eq!(
        c.read_data(n1, o, 0).unwrap(),
        42,
        "copied out locally, data intact"
    );
}

/// Bunches are collected independently: a BGC of one bunch leaves another
/// bunch's tables, spaces, and objects untouched.
#[test]
fn bunch_collections_are_independent() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n1 = n(0);
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n1).unwrap();
    let l1 = lists::build_list(&mut c, n1, b1, 5, 0).unwrap();
    let l2 = lists::build_list(&mut c, n1, b2, 5, 100).unwrap();
    c.add_root(n1, l1.head);
    c.add_root(n1, l2.head);
    let epoch_b2_before = c.gc.node(n1).bunch(b2).unwrap().epoch;
    let s = c.run_bgc(n1, b1).unwrap();
    assert_eq!(s.live, 5, "only B1's objects considered");
    assert_eq!(c.gc.node(n1).bunch(b2).unwrap().epoch, epoch_b2_before);
    assert_eq!(
        lists::read_payloads(&c, n1, l2.head).unwrap(),
        (100..105).collect::<Vec<_>>()
    );
}
