//! Multi-hop ownership chains and intra-bunch SSP transitivity.
//!
//! When ownership of a stub-holding object migrates through several nodes
//! (A → B → C), each transfer leaves an intra-bunch SSP behind; the chain
//! C→B→A must keep the inter-bunch stubs at A — and the target they
//! protect — alive until the object dies everywhere. Section 4.3's case
//! analysis covers the single-hop case; the reproduction generalizes stub
//! retention to "intra stubs live while the local replica lives"
//! (DESIGN.md §5), and these tests pin that behaviour down.

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Builds: object O in bunch B1 created at node 0 with an inter-bunch
/// reference to target X (bunch B2, node 0); B1 replicated on nodes 1, 2.
fn chain_fixture() -> (Cluster, BunchId, BunchId, Addr, Addr) {
    let mut c = Cluster::new(ClusterConfig::with_nodes(3));
    let n0 = n(0);
    let b1 = c.create_bunch(n0).unwrap();
    let b2 = c.create_bunch(n0).unwrap();
    let o = c.alloc(n0, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let x = c.alloc(n0, b2, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, x, 0, 1234).unwrap();
    c.write_ref(n0, o, 0, x).unwrap(); // inter-bunch stub at node 0
    c.map_bunch(n(1), b1, n0).unwrap();
    c.map_bunch(n(2), b1, n0).unwrap();
    (c, b1, b2, o, x)
}

/// Ownership hops 0 -> 1 -> 2; the SSP chain 2 -> 1 -> 0 forms, and the
/// inter-bunch target stays protected through collections at every node.
#[test]
fn two_hop_chain_protects_the_stub_site() {
    let (mut c, b1, b2, o, x) = chain_fixture();
    // Only the mutator at node 2 keeps O alive.
    c.acquire_write(n(1), o).unwrap();
    c.release(n(1), o).unwrap();
    c.acquire_write(n(2), o).unwrap();
    c.release(n(2), o).unwrap();
    c.add_root(n(2), o);

    // Chain shape after compression: the second transfer points the new
    // owner's stub *directly* at the inter-stub site (node 0), rather than
    // building an A->B->C forwarding chain (which, with bounces, could
    // weld uncollectable cross-node SSP cycles). Node 1 retains its own
    // stub->0 while its replica lives.
    assert_eq!(
        c.gc.node(n(1)).bunch(b1).unwrap().stub_table.intra()[0].scion_at,
        n(0)
    );
    assert!(c
        .gc
        .node(n(1))
        .bunch(b1)
        .unwrap()
        .scion_table
        .intra()
        .is_empty());
    assert_eq!(
        c.gc.node(n(2)).bunch(b1).unwrap().stub_table.intra()[0].scion_at,
        n(0)
    );
    assert_eq!(
        c.gc.node(n(0)).bunch(b1).unwrap().scion_table.intra()[0].stub_at,
        n(1)
    );

    // Collections at every node, twice over. The stub site (node 0, held
    // by node 2's direct stub through its intra scion) and the owner
    // (node 2, rooted) must keep their replicas; the compressed-out middle
    // node (1) may legitimately drop its replica — it is no longer part of
    // the protection chain.
    let mut reclaimed = [0u64; 3];
    for _round in 0..2 {
        for i in 0..3 {
            reclaimed[i as usize] += c.run_bgc(n(i), b1).unwrap().reclaimed;
        }
        let s = c.run_bgc(n(0), b2).unwrap();
        assert_eq!(s.reclaimed, 0, "X protected by the chain");
    }
    assert_eq!(reclaimed[0], 0, "the stub site's replica must survive");
    assert_eq!(reclaimed[2], 0, "the rooted owner must survive");
    assert!(reclaimed[1] <= 1, "at most the middleman's replica dies");
    // Node 0's scion table carries the re-keyed entry for node 2's direct
    // stub (created by the cleaner from node 2's report).
    let scions_at_0 = &c.gc.node(n(0)).bunch(b1).unwrap().scion_table.intra();
    assert!(
        scions_at_0.iter().any(|s| s.stub_at == n(2)),
        "node 2's direct stub was re-keyed at node 0: {scions_at_0:?}"
    );
    assert_eq!(c.read_data(n(0), x, 0).unwrap(), 1234);
    let _ = o;
}

/// When the last mutator reference dies, the chain unwinds end to end and
/// the inter-bunch target falls.
#[test]
fn chain_unwinds_after_death() {
    let (mut c, b1, b2, _o, x) = chain_fixture();
    let o = _o;
    c.acquire_write(n(1), o).unwrap();
    c.release(n(1), o).unwrap();
    c.acquire_write(n(2), o).unwrap();
    c.release(n(2), o).unwrap();
    let root = c.add_root(n(2), o);

    // Death at the head of the chain.
    c.remove_root(n(2), root);
    // The cascade requires one collection per link, head to tail, plus the
    // final target collection; run a few full rounds to let it settle.
    let mut total_reclaimed = 0;
    for _ in 0..4 {
        for i in [2u32, 1, 0] {
            total_reclaimed += c.run_bgc(n(i), b1).unwrap().reclaimed;
        }
    }
    assert_eq!(
        total_reclaimed, 3,
        "O's replica reclaimed on all three nodes"
    );
    let s = c.run_bgc(n(0), b2).unwrap();
    assert_eq!(s.reclaimed, 1, "X falls once the chain is gone");
    let oid_x = c.oid_at_local(n(0), x).err();
    assert!(oid_x.is_some(), "X is gone");
    c.assert_gc_acquired_no_tokens();
}

/// Ownership bouncing back and forth (A -> B -> A -> B) keeps exactly one
/// SSP pair per direction — no unbounded growth.
#[test]
fn bouncing_ownership_does_not_grow_tables() {
    let (mut c, b1, _b2, o, _x) = chain_fixture();
    c.add_root(n(0), o);
    for _ in 0..5 {
        c.acquire_write(n(1), o).unwrap();
        c.release(n(1), o).unwrap();
        c.acquire_write(n(0), o).unwrap();
        c.release(n(0), o).unwrap();
    }
    let stubs_0 = c.gc.node(n(0)).bunch(b1).unwrap().stub_table.intra().len();
    let stubs_1 = c.gc.node(n(1)).bunch(b1).unwrap().stub_table.intra().len();
    assert!(stubs_0 <= 1, "node 0 intra stubs bounded: {stubs_0}");
    assert!(stubs_1 <= 1, "node 1 intra stubs bounded: {stubs_1}");
    let scions_0 = c.gc.node(n(0)).bunch(b1).unwrap().scion_table.intra().len();
    let scions_1 = c.gc.node(n(1)).bunch(b1).unwrap().scion_table.intra().len();
    assert!(
        scions_0 <= 1 && scions_1 <= 1,
        "scions bounded: {scions_0}/{scions_1}"
    );
}

/// A reader on a third node (hint still pointing at the original owner)
/// keeps the object alive through the ownerPtr chain even after two
/// ownership hops it never observed.
#[test]
fn stale_hints_still_protect_through_the_chain() {
    let (mut c, b1, _b2, o, _x) = chain_fixture();
    // Node 2 reads O while node 0 still owns it; its hint points at 0.
    c.acquire_read(n(2), o).unwrap();
    c.release(n(2), o).unwrap();
    c.add_root(n(2), o);
    // Ownership silently moves 0 -> 1; node 2 is invalidated but never
    // re-synchronizes, so its ownerPtr still names node 0.
    c.acquire_write(n(1), o).unwrap();
    c.release(n(1), o).unwrap();
    let oid = c.oid_at_local(n(0), o).unwrap();
    assert_eq!(c.engine.obj_state(n(2), oid).unwrap().owner_hint, n(0));
    // Everyone collects; node 2's exiting pointer enters node 0, whose
    // replica's pointer enters node 1 — the chain holds O alive at the
    // owner even though the owner never heard from node 2.
    for _round in 0..2 {
        for i in [2u32, 0, 1] {
            let s = c.run_bgc(n(i), b1).unwrap();
            assert_eq!(s.reclaimed, 0, "chain liveness at node {i}");
        }
    }
    // Node 2's replica is still materialized and structurally intact: its
    // single pointer field still denotes X.
    let x_at_2 = c.read_ref(n(2), o, 0).unwrap();
    assert!(c.ptr_eq(n(2), x_at_2, _x), "node 2 still reads its replica");
}
