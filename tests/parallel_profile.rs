//! Acceptance tests for the wall-clock span profiler on the parallel
//! runtime (DESIGN.md §13): a *blocking* cross-node acquire — requester
//! parks, the remote owner's release triggers the grant — must render in
//! the exported Perfetto trace as ONE stitched flow that crosses node
//! (pid) boundaries and contains the whole anatomy of the wait:
//! submit, park, poke-wake, reserve-claim, protocol-mutex wait/hold, and
//! the driver applies on both ends.
//!
//! The profiler is process-global, so this binary's tests serialize on a
//! local mutex (each integration-test *file* is its own process, so no
//! cross-binary interference).

use std::collections::BTreeSet;
use std::time::Duration;

use bmx_repro::prelude::*;
use bmx_repro::profile;
use bmx_repro::trace::chrome::{parse, validate, Json};

static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Drives one blocking write acquire from node 1 while node 0 sits in a
/// critical section, with the profiler on; returns the exported trace.
fn blocking_acquire_trace() -> String {
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(2));
    let h0 = pc.handle(n(0));
    let h1 = pc.handle(n(1));
    let bunch = h0.create_bunch().expect("bunch");
    let obj = h0
        .alloc(bunch, &ObjSpec::with_refs(2, &[0]))
        .expect("alloc");
    h0.add_root(obj).expect("root");
    h1.map_bunch(bunch, n(0)).expect("map");
    h1.add_root(obj).expect("root");
    assert!(pc.quiesce(Duration::from_secs(10)), "setup quiesce");

    profile::enable(4096);

    // Node 0 enters the critical section first, so node 1's request is
    // queued at the owner and node 1 parks waiting for the grant.
    h0.acquire_write(obj).expect("owner acquire");
    let waiter = std::thread::spawn(move || {
        h1.acquire_write(obj).expect("blocked acquire");
        h1.write_data(obj, 1, 42).expect("write");
        h1.release(obj).expect("release");
    });
    // Long enough that the waiter burns through its spin phase (64
    // yields) and parks on the wake cell before the grant exists.
    std::thread::sleep(Duration::from_millis(50));
    h0.release(obj).expect("owner release");
    waiter.join().expect("waiter thread");
    assert!(pc.quiesce(Duration::from_secs(10)), "quiesce");

    let text = profile::chrome::export(&profile::snapshot_all());
    profile::disable();
    let (cluster, report) = pc.shutdown(Shutdown::Drain).expect("shutdown");
    assert_eq!(report.dropped, 0, "drain dropped traffic");
    drop(cluster);
    text
}

/// The headline acceptance check: one flow id carries the blocked
/// acquire across both pids, with park/wake/reserve-claim/mutex
/// wait+hold spans attached, and the export stitches it with Perfetto
/// flow events (`s`/`t`/`f`).
#[test]
fn blocking_cross_node_acquire_renders_as_one_stitched_flow() {
    let _serial = SERIAL.lock().unwrap();
    let text = blocking_acquire_trace();
    validate(&text).expect("well-formed trace JSON");
    let doc = parse(&text).expect("parses");
    let evs: Vec<&Json> = match &doc {
        Json::Arr(evs) => evs.iter().collect(),
        other => panic!("top-level array missing: {other:?}"),
    };
    let xs: Vec<&&Json> = evs
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();

    // Node 1's blocked acquire: the root "acquire" span on pid 1 that
    // actually parked (a park span shares its flow). Its flow id is the
    // stitching key for the rest of the assertions.
    let flow_of = |e: &Json| {
        e.get("args")
            .and_then(|a| a.get("flow"))
            .and_then(Json::as_num)
            .unwrap_or(0.0)
    };
    let parked_flows: BTreeSet<u64> = xs
        .iter()
        .filter(|e| {
            e.get("name").and_then(Json::as_str) == Some("acquire/park")
                && e.get("pid").and_then(Json::as_num) == Some(1.0)
        })
        .map(|e| flow_of(e) as u64)
        .collect();
    let flow = *parked_flows.first().expect("node 1 parked at least once");
    assert_ne!(flow, 0, "parked acquire must carry a real flow id");

    let in_flow: Vec<&&&Json> = xs.iter().filter(|e| flow_of(e) as u64 == flow).collect();
    let names: BTreeSet<&str> = in_flow
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for required in [
        "acquire",
        "acquire/submit",
        "acquire/park",
        "acquire/wake",
        "acquire/reserve-claim",
        "mutex/wait",
        "mutex/hold",
        "driver/apply",
    ] {
        assert!(
            names.contains(required),
            "flow {flow} missing span {required:?}; has {names:?}"
        );
    }

    // The flow crosses the node boundary: the request is applied by node
    // 0's driver, the grant by node 1's, so spans land on both pids.
    let pids: BTreeSet<u64> = in_flow
        .iter()
        .filter_map(|e| e.get("pid").and_then(Json::as_num))
        .map(|p| p as u64)
        .collect();
    assert!(
        pids.contains(&0) && pids.contains(&1),
        "flow {flow} confined to pids {pids:?}"
    );

    // And the export emits the Perfetto flow arrows for it: exactly one
    // start and one finish, with steps in between.
    let flow_evs: Vec<&&Json> = evs
        .iter()
        .filter(|e| {
            e.get("cat").and_then(Json::as_str) == Some("flow")
                && e.get("id").and_then(Json::as_num) == Some(flow as f64)
        })
        .collect();
    assert!(flow_evs.len() >= 3, "flow arrows missing: {flow_evs:?}");
    let count_ph = |ph: &str| {
        flow_evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .count()
    };
    assert_eq!(count_ph("s"), 1, "one flow start");
    assert_eq!(count_ph("f"), 1, "one flow finish");
    assert!(count_ph("t") >= 1, "intermediate flow steps");

    // Tracks are named for the Perfetto UI: both processes, and at least
    // the driver and mutator threads.
    let meta_names: Vec<&str> = evs
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(meta_names.contains(&"node 0"), "{meta_names:?}");
    assert!(meta_names.contains(&"node 1"), "{meta_names:?}");
    assert!(
        meta_names.iter().any(|m| m.contains("driver")),
        "driver thread named: {meta_names:?}"
    );
}

/// Disabled-profiler runs must record nothing at all — the zero-cost
/// claim's observable half (the digest half is pinned in
/// `parallel_conformance.rs`).
#[test]
fn disabled_profiler_records_nothing() {
    let _serial = SERIAL.lock().unwrap();
    profile::disable();
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(2));
    let h0 = pc.handle(n(0));
    let bunch = h0.create_bunch().expect("bunch");
    let obj = h0
        .alloc(bunch, &ObjSpec::with_refs(2, &[0]))
        .expect("alloc");
    h0.acquire_write(obj).expect("acquire");
    h0.write_data(obj, 1, 7).expect("write");
    h0.release(obj).expect("release");
    assert!(pc.quiesce(Duration::from_secs(10)), "quiesce");
    let (cluster, _) = pc.shutdown(Shutdown::Drain).expect("shutdown");
    drop(cluster);
    assert!(
        profile::snapshot_all().is_empty(),
        "spans recorded while disabled"
    );
}
