//! The differential conformance suite for the transport seam: the same
//! protocol state machines run in both execution modes — the
//! deterministic tick simulation and the `bmx::parallel` runtime (one OS
//! thread per node, channel links, real mutator threads) — and must
//! reach *equivalent final protocol state* from the same seeded workload.
//!
//! Methodology (DESIGN.md §11): the workload is phase-structured so its
//! outcome is interleaving-independent — allocations and bunch creation
//! happen in a sequential setup phase (address/OID/bunch-id determinism),
//! the racing phase performs only commutative shared-counter increments
//! plus node-private churn and collections, and a sequential settle phase
//! pulls every shared token to node 0 and runs the collectors in a fixed
//! order. Any execution mode that implements the paper's protocol
//! faithfully must then agree on the full digest: per-node token and
//! ownership state, heap payloads, stub/scion tables, directory
//! resolution, and root reachability.
//!
//! The second half is the schedule fuzzer: seeded perturbations (yields,
//! sleeps) are injected between operations of the parallel run to shake
//! out interleavings, and every run is re-checked against the digest,
//! `assert_no_premature_reclamation`, and the Section-5 acquire
//! invariants recovered from the causally merged trace stream.

use std::sync::Arc;
use std::time::Duration;

use bmx_common::SplitMix64;
use bmx_repro::bmx::audit;
use bmx_repro::prelude::*;
use bmx_repro::profile;
use bmx_repro::trace::{self, TraceEvent};
use parking_lot::Mutex;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

const NODES: u32 = 3;
const SHARED: usize = 4;
const STEPS: u64 = 24;

/// Serializes the tests in this binary: the schedule fuzzer installs the
/// *process-global* trace recorder, which would otherwise capture records
/// from a concurrently running differential test (a different cluster
/// with overlapping OIDs — false positives in the invariant queries).
static TRACE_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn per_node_rng(seed: u64, node: u32) -> SplitMix64 {
    SplitMix64::new(seed ^ ((u64::from(node) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Everything the setup phase creates; identical in both modes because
/// setup runs sequentially (single-threaded in sim, one closure under the
/// protocol lock in parallel).
#[derive(Clone)]
struct Setup {
    shared_bunch: BunchId,
    priv_bunch: Vec<BunchId>,
    shared: Vec<Addr>,
    keep: Vec<Addr>,
}

fn setup_workload(c: &mut Cluster) -> Setup {
    let n0 = n(0);
    let shared_bunch = c.create_bunch(n0).unwrap();
    let shared: Vec<Addr> = (0..SHARED)
        .map(|_| {
            let o = c
                .alloc(n0, shared_bunch, &ObjSpec::with_refs(2, &[0]))
                .unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    for i in 1..NODES {
        c.map_bunch(n(i), shared_bunch, n0).unwrap();
        for &o in &shared {
            c.add_root(n(i), o);
        }
    }
    // One private bunch + one rooted survivor per node; the survivor
    // holds a cross-bunch reference so the private BGCs exercise the
    // inter-bunch stub path too.
    let mut priv_bunch = Vec::new();
    let mut keep = Vec::new();
    for i in 0..NODES {
        let node = n(i);
        let pb = c.create_bunch(node).unwrap();
        let k = c.alloc(node, pb, &ObjSpec::with_refs(2, &[0])).unwrap();
        c.add_root(node, k);
        c.write_ref(node, k, 0, shared[0]).unwrap();
        priv_bunch.push(pb);
        keep.push(k);
    }
    Setup {
        shared_bunch,
        priv_bunch,
        shared,
        keep,
    }
}

/// One racing-phase step for `node`: a commutative increment on a
/// seed-chosen shared object, plus periodic private garbage and a private
/// collection. `acquire` and `bgc` abstract over the two modes' entry
/// points (direct cluster calls vs. a blocking [`NodeHandle`]).
fn step_plan(rng: &mut SplitMix64) -> usize {
    (rng.next_u64() % SHARED as u64) as usize
}

/// The per-node expected increment counts, replayed from the seed alone —
/// pins both modes to the *workload*, not just to each other.
fn expected_totals(seed: u64) -> Vec<u64> {
    let mut totals = vec![0u64; SHARED];
    for node in 0..NODES {
        let mut rng = per_node_rng(seed, node);
        for _ in 0..STEPS {
            totals[step_plan(&mut rng)] += 1;
        }
    }
    totals
}

/// The full final-state digest. Two runs are *conformant* iff their
/// digests are equal after the settle phase.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    /// Per node, sorted: (oid, token, is_owner) for every live replica.
    replicas: Vec<Vec<(u64, Token, bool)>>,
    /// Field 1 of each shared object, read at its (unique) owner.
    payloads: Vec<u64>,
    /// Per node: the address set reachable from its registered roots.
    reachable: Vec<Vec<Addr>>,
    /// Per node, per bunch: the rendered stub and scion tables.
    ssp_tables: Vec<String>,
    /// Per node: directory resolution of every tracked address.
    directory: Vec<Vec<Addr>>,
}

/// Sequential settle phase + digest, identical for both modes: pull every
/// shared token to node 0, run the collectors in a fixed order, then
/// snapshot. Also runs the premature-reclamation audit over every root.
fn settle_and_digest(c: &mut Cluster, s: &Setup) -> Digest {
    let n0 = n(0);
    c.settle(50_000).unwrap();
    for &o in &s.shared {
        c.acquire_write(n0, o).unwrap();
        c.release(n0, o).unwrap();
    }
    for i in 0..NODES {
        c.run_bgc(n(i), s.shared_bunch).unwrap();
    }
    for i in 0..NODES {
        c.run_bgc(n(i), s.priv_bunch[i as usize]).unwrap();
    }
    c.settle(50_000).unwrap();
    c.assert_gc_acquired_no_tokens();

    let mut live: Vec<(NodeId, Addr)> = Vec::new();
    for i in 0..NODES {
        for &o in &s.shared {
            live.push((n(i), o));
        }
        live.push((n(i), s.keep[i as usize]));
    }
    audit::assert_no_premature_reclamation(c, &live);

    let tracked: Vec<Addr> = s.shared.iter().chain(s.keep.iter()).copied().collect();
    let replicas = (0..NODES)
        .map(|i| {
            let mut v: Vec<(u64, Token, bool)> = c
                .engine
                .replicas(n(i))
                .into_iter()
                .map(|(oid, st)| (oid.0, st.token, st.is_owner))
                .collect();
            v.sort_unstable_by_key(|e| e.0);
            v
        })
        .collect();
    let payloads = s
        .shared
        .iter()
        .map(|&o| {
            let owner = (0..NODES)
                .map(n)
                .find(|&node| {
                    c.oid_at_local(node, o)
                        .is_ok_and(|oid| c.engine.is_owner(node, oid))
                })
                .expect("every shared object has exactly one owner");
            c.read_data(owner, o, 1).unwrap()
        })
        .collect();
    let reachable = (0..NODES)
        .map(|i| c.reachable_from_roots(n(i)).into_iter().collect())
        .collect();
    let ssp_tables = (0..NODES)
        .map(|i| {
            let ns = c.gc.node(n(i));
            let mut out = String::new();
            for (bid, brs) in &ns.bunches {
                out.push_str(&format!(
                    "{bid:?}: stubs intra {:?} inter {:?}; scions intra {:?} inter {:?}\n",
                    brs.stub_table.intra(),
                    brs.stub_table.inter(),
                    brs.scion_table.intra(),
                    brs.scion_table.inter(),
                ));
            }
            out
        })
        .collect();
    let directory = (0..NODES)
        .map(|i| {
            let ns = c.gc.node(n(i));
            tracked.iter().map(|&a| ns.directory.resolve(a)).collect()
        })
        .collect();
    Digest {
        replicas,
        payloads,
        reachable,
        ssp_tables,
        directory,
    }
}

/// The deterministic mode: the whole workload on one thread, nodes
/// round-robined step by step through the tick simulation.
fn run_sim(seed: u64) -> Digest {
    let mut cfg = ClusterConfig::with_nodes(NODES);
    // Match the parallel runtime's staging config so protocol behavior
    // (not transport behavior) is the only variable.
    cfg.net = NetworkConfig::lossless(1);
    cfg.retry = None;
    let mut c = Cluster::new(cfg);
    let s = setup_workload(&mut c);
    let mut rngs: Vec<SplitMix64> = (0..NODES).map(|i| per_node_rng(seed, i)).collect();
    for step in 0..STEPS {
        for i in 0..NODES {
            let node = n(i);
            let o = s.shared[step_plan(&mut rngs[i as usize])];
            c.acquire_write(node, o).unwrap();
            let v = c.read_data(node, o, 1).unwrap();
            c.write_data(node, o, 1, v + 1).unwrap();
            c.release(node, o).unwrap();
            let pb = s.priv_bunch[i as usize];
            if step % 6 == 2 {
                let g = c.alloc(node, pb, &ObjSpec::with_refs(2, &[0])).unwrap();
                c.write_data(node, g, 1, step).unwrap();
            }
            if step % 8 == 5 {
                c.run_bgc(node, pb).unwrap();
            }
        }
    }
    settle_and_digest(&mut c, &s)
}

/// The parallel mode: one mutator thread per node over real
/// [`NodeHandle`]s, per-node driver threads moving the token traffic.
/// `fuzz` seeds optional schedule perturbation (yields/sleeps between
/// operations) for the fuzzer tests.
fn run_parallel(seed: u64, fuzz: Option<u64>) -> Digest {
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(NODES));
    let s = pc
        .handle(n(0))
        .with(|c| Ok(setup_workload(c)))
        .expect("setup");
    assert!(
        pc.quiesce(Duration::from_secs(10)),
        "setup failed to settle"
    );

    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads = Vec::new();
    for i in 0..NODES {
        let h = pc.handle(n(i));
        let s = s.clone();
        let failures = Arc::clone(&failures);
        threads.push(std::thread::spawn(move || {
            h.bind_metrics();
            let mut rng = per_node_rng(seed, i);
            let mut fz = fuzz.map(|f| per_node_rng(f, i));
            let jitter = |fz: &mut Option<SplitMix64>| {
                if let Some(r) = fz {
                    match r.next_u64() % 4 {
                        0 => std::thread::yield_now(),
                        1 => std::thread::sleep(Duration::from_micros(r.next_u64() % 150)),
                        _ => {}
                    }
                }
            };
            let work = |rng: &mut SplitMix64, fz: &mut Option<SplitMix64>| -> Result<()> {
                for step in 0..STEPS {
                    let o = s.shared[step_plan(rng)];
                    jitter(fz);
                    h.acquire_write(o)?;
                    let v = h.read_data(o, 1)?;
                    jitter(fz);
                    h.write_data(o, 1, v + 1)?;
                    h.release(o)?;
                    let pb = s.priv_bunch[i as usize];
                    if step % 6 == 2 {
                        let g = h.alloc(pb, &ObjSpec::with_refs(2, &[0]))?;
                        h.write_data(g, 1, step)?;
                    }
                    if step % 8 == 5 {
                        jitter(fz);
                        h.run_bgc(pb)?;
                    }
                }
                Ok(())
            };
            if let Err(e) = work(&mut rng, &mut fz) {
                failures.lock().push(format!("node {i}: {e}"));
            }
        }));
    }
    for t in threads {
        t.join().expect("mutator thread");
    }
    assert!(
        failures.lock().is_empty(),
        "parallel run (seed {seed:#x}, fuzz {fuzz:?}) failed: {:?}",
        failures.lock()
    );
    assert!(pc.quiesce(Duration::from_secs(10)), "failed to quiesce");
    let (mut cluster, report) = pc.shutdown(Shutdown::Drain).expect("drain shutdown");
    assert_eq!(report.dropped, 0, "drain dropped traffic: {report:?}");
    assert_eq!(
        report.delivered, report.sent,
        "drain must apply everything: {report:?}"
    );
    settle_and_digest(&mut cluster, &s)
}

/// Headline: across eight seeds, the parallel runtime and the tick
/// simulation reach *equal* final protocol state — token placement,
/// ownership, payloads, SSP tables, directory, reachability — and both
/// match the totals replayed from the workload seed alone.
#[test]
fn parallel_matches_sim_on_eight_seeds() {
    let _serial = TRACE_SERIAL.lock().unwrap();
    for seed in [
        0xC0F0_0001u64,
        0xC0F0_0002,
        0xC0F0_0003,
        0xC0F0_0004,
        0xD15C_0005,
        0xD15C_0006,
        0xFEED_0007,
        0xFEED_0008,
    ] {
        let sim = run_sim(seed);
        let par = run_parallel(seed, None);
        assert_eq!(
            sim.payloads,
            expected_totals(seed),
            "sim totals (seed {seed:#x})"
        );
        assert_eq!(sim, par, "mode divergence (seed {seed:#x})");
    }
}

/// The wall-clock span profiler's zero-cost claim, pinned as protocol
/// conformance: the same seeded workload, run once with the profiler off
/// and once recording every span kind, must produce *bit-identical*
/// digests (and both must match the deterministic simulation).
/// Observation must never become participation — a profiler that
/// perturbed token placement or payloads would fail here, not in a
/// dashboard someone squints at later.
#[test]
fn profiled_run_digest_is_identical_to_unprofiled() {
    let _serial = TRACE_SERIAL.lock().unwrap();
    let seed = 0x0F11_ED00u64;
    let sim = run_sim(seed);
    profile::disable();
    let unprofiled = run_parallel(seed, None);
    profile::enable(4096);
    let profiled = run_parallel(seed, None);
    let spans: usize = profile::snapshot_all().iter().map(|t| t.spans.len()).sum();
    profile::disable();
    assert!(
        spans > 0,
        "profiler on but no spans recorded — check vacuous"
    );
    assert_eq!(sim, unprofiled, "unprofiled parallel diverged from sim");
    assert_eq!(unprofiled, profiled, "profiling perturbed protocol state");
}

/// The schedule fuzzer: seeded sleeps and yields perturb the parallel
/// interleaving; every perturbed schedule must still (a) produce the same
/// digest as the deterministic mode, (b) pass the premature-reclamation
/// audit (checked inside the run), and (c) satisfy the Section-5 acquire
/// invariants on the causally merged trace of all threads.
#[test]
fn schedule_fuzzer_preserves_safety_and_digest() {
    let _serial = TRACE_SERIAL.lock().unwrap();
    let seed = 0xF0CC_ACC1A_u64;
    let reference = run_sim(seed);
    trace::install_global_vec();
    for fuzz in [
        0xF2_0001u64,
        0xF2_0002,
        0xF2_0003,
        0xF2_0004,
        0xF2_0005,
        0xF2_0006,
    ] {
        let _ = trace::take_global();
        let par = run_parallel(seed, Some(fuzz));
        assert_eq!(reference, par, "fuzzed schedule diverged (fuzz {fuzz:#x})");
        let records = trace::take_global();
        assert!(
            records
                .iter()
                .any(|r| matches!(r.event, TraceEvent::AcquireComplete { .. })),
            "fuzz {fuzz:#x}: trace captured no acquires — checker vacuous"
        );
        let bad = trace::query::acquire_invariant_violations(&records);
        assert!(
            bad.is_empty(),
            "fuzz {fuzz:#x}: Section-5 acquire violations: {bad:?}"
        );
    }
    trace::disable_global();
}
