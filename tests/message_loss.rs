//! Message-loss behaviour (paper, Section 6.1; experiment E5).
//!
//! Reachability tables are idempotent: losing one delays collection but
//! never endangers a live object, and a verbatim re-send fully recovers.
//! Scion-messages enjoy the same recovery through the tables (the cleaner
//! recreates missing scions from reported stubs); the window between a lost
//! scion-message and the first report is the race the paper defers to
//! [Ferreira 94b] — demonstrated, not hidden, below.

use bmx_repro::prelude::*;
use bmx_repro::workloads::lists;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Losing every stub-table message keeps remote garbage uncollected
/// (liveness deferred) but reclaims nothing live (safety); re-sending the
/// same idempotent table after the network heals completes collection.
#[test]
fn lost_tables_are_recovered_by_resend() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 1.0),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(2, &[0, 1])).unwrap();
    let keep = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    let drop_me = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, keep).unwrap();
    c.write_ref(n1, src, 1, drop_me).unwrap();

    // The reference to `drop_me` dies; N1's BGC publishes a table that the
    // network eats.
    c.write_ref(n1, src, 1, Addr::NULL).unwrap();
    c.run_bgc(n1, b1).unwrap();
    assert!(
        c.net.class_stats(MsgClass::StubTable).dropped > 0,
        "tables were lost"
    );

    // Liveness deferred: the stale scion still protects `drop_me`...
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 0, "stale scion keeps the garbage alive");
    // ...and safety intact: `keep` is alive and readable at its node.
    assert_eq!(c.read_data(n2, keep, 0).unwrap(), 0);

    // The network heals; the idempotent table is re-sent verbatim.
    c.net.set_drop(MsgClass::StubTable, 0.0);
    c.resend_report(n1, b1, &[n2]).unwrap();
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 1, "garbage collected after recovery");
    assert_eq!(
        c.read_data(n2, keep, 0).unwrap(),
        0,
        "live object untouched"
    );
    c.assert_gc_acquired_no_tokens();
}

/// Duplicated tables (re-sent although the original arrived) are harmless:
/// processing is idempotent.
#[test]
fn duplicate_tables_are_idempotent() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();
    c.run_bgc(n1, b1).unwrap();
    // Re-send the same epoch's table five times.
    for _ in 0..5 {
        c.resend_report(n1, b1, &[n2]).unwrap();
    }
    // The scion survives (the stub is still reported) and the target lives.
    assert_eq!(
        c.gc.node(n2).bunch(b2).unwrap().scion_table.inter().len(),
        1
    );
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 0);
}

/// Sustained 50% loss on table traffic across repeated churn rounds:
/// liveness may lag, but nothing live is ever reclaimed anywhere.
#[test]
fn sustained_loss_never_reclaims_live_objects() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 0.5),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    // A live cross-bunch structure: a list in B1, plus a rooted bridge
    // object in B1 holding the only reference to an anchor in B2.
    let list = lists::build_list(&mut c, n1, b1, 6, 0).unwrap();
    c.add_root(n1, list.head);
    let anchor = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.write_data(n2, anchor, 0, 4242).unwrap();
    let bridge = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n1, bridge);
    c.write_ref(n1, bridge, 0, anchor).unwrap();

    // Churn: every round detaches garbage in both bunches and collects on
    // both nodes, under 50% table loss.
    for round in 0..10u64 {
        let junk1 = c.alloc(n1, b1, &ObjSpec::data(1)).unwrap();
        let junk2 = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
        let _ = (junk1, junk2); // immediately unreachable
        c.run_bgc(n1, b1).unwrap();
        c.run_bgc(n2, b2).unwrap();
        // Safety probe every round: the list walks, the anchor answers.
        let head = c.gc.node(n1).directory.resolve(list.head);
        let payloads = lists::read_payloads(&c, n1, head).unwrap();
        assert_eq!(payloads.len(), 6, "round {round}: list intact");
        assert_eq!(
            c.read_data(n2, anchor, 0).unwrap(),
            4242,
            "round {round}: anchor intact"
        );
    }
    assert!(
        c.net.class_stats(MsgClass::StubTable).dropped > 0,
        "loss actually happened"
    );
    c.assert_gc_acquired_no_tokens();
}

/// A lost scion-message is recovered by the very next reachability table:
/// the cleaner recreates the scion from the reported stub.
#[test]
fn lost_scion_message_recovered_by_table() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::ScionMessage, 1.0),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();
    // The scion-message was eaten.
    assert_eq!(
        c.gc.node(n2)
            .bunch(b2)
            .map_or(0, |b| b.scion_table.inter().len()),
        0
    );
    // N1's next collection reports the stub; the cleaner recreates the
    // missing scion at N2.
    c.run_bgc(n1, b1).unwrap();
    assert_eq!(
        c.gc.node(n2).bunch(b2).unwrap().scion_table.inter().len(),
        1
    );
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 0, "target protected again");
}

/// The documented race (Section 6.1 defers it to the companion paper): if
/// the target's collection runs inside the window between a lost
/// scion-message and the first table from the source, the target is
/// unprotected. The reproduction preserves — rather than papers over — this
/// behaviour; the test pins it down.
#[test]
fn scion_message_loss_window_is_the_known_race() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::ScionMessage, 1.0),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();
    // The target's BGC runs inside the window: the object is unprotected.
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 1, "the race window is real (and documented)");
}

/// Duplication idempotency properties. The chaos plane duplicates messages
/// on the classes [`MsgClass::is_idempotent`] admits — cleaner reports
/// (stub-tables) and the relocation records that ride them — so these
/// properties pin the contract that makes that safe: delivering the same
/// payload N times must be observationally identical to delivering it once.
mod duplication_properties {
    use super::*;
    use bmx_repro::dsm::Relocation;
    use bmx_repro::gc::integration;
    use proptest::prelude::*;

    /// Outcome of a report-delivery scenario, compared across duplication
    /// factors: scion population at the target, objects reclaimed there,
    /// and every live target's payload.
    #[derive(Debug, PartialEq)]
    struct ReportOutcome {
        scions: usize,
        reclaimed: u64,
        payloads: Vec<u64>,
    }

    /// Cross-bunch graph: `live` rooted references and `dead` detached ones
    /// from node 0's bunch into node 1's; the same epoch's report is
    /// delivered `deliveries` times before the target collects.
    fn run_report_scenario(live: usize, dead: usize, deliveries: usize) -> ReportOutcome {
        let mut c = Cluster::new(ClusterConfig::with_nodes(2));
        let (n1, n2) = (n(0), n(1));
        let b1 = c.create_bunch(n1).unwrap();
        let b2 = c.create_bunch(n2).unwrap();
        let mut targets = Vec::new();
        for i in 0..(live + dead) {
            let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
            let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
            c.write_data(n2, tgt, 0, 1000 + i as u64).unwrap();
            c.add_root(n1, src);
            c.write_ref(n1, src, 0, tgt).unwrap();
            if i >= live {
                c.write_ref(n1, src, 0, Addr::NULL).unwrap();
            } else {
                targets.push(tgt);
            }
        }
        c.run_bgc(n1, b1).unwrap();
        for _ in 1..deliveries {
            c.resend_report(n1, b1, &[n2]).unwrap();
        }
        let s = c.run_bgc(n2, b2).unwrap();
        ReportOutcome {
            scions: c
                .gc
                .node(n2)
                .bunch(b2)
                .map_or(0, |b| b.scion_table.inter().len()),
            reclaimed: s.reclaimed,
            payloads: targets
                .iter()
                .map(|&t| c.read_data(n2, t, 0).unwrap())
                .collect(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Cleaner reports: N deliveries of one epoch's table ≡ one
        /// delivery — same scions, same reclamation, same survivors.
        #[test]
        fn reports_are_idempotent_under_n_fold_duplication(
            live in 1usize..5,
            dead in 0usize..5,
            dups in 2usize..8,
        ) {
            let once = run_report_scenario(live, dead, 1);
            prop_assert_eq!(once.reclaimed, dead as u64);
            let many = run_report_scenario(live, dead, dups);
            prop_assert_eq!(once, many);
        }

        /// Location updates: re-applying one relocation batch N times at a
        /// replica leaves the directory, the forwarding chain, and every
        /// payload exactly as one application does.
        #[test]
        fn relocations_are_idempotent_under_n_fold_duplication(
            objs in 1usize..6,
            garbage in 1usize..8,
            dups in 2usize..8,
        ) {
            let mut c = Cluster::new(ClusterConfig::with_nodes(2));
            let (n1, n2) = (n(0), n(1));
            let b = c.create_bunch(n1).unwrap();
            let mut tracked = Vec::new();
            for i in 0..objs {
                // Garbage padding in front forces the survivors to move.
                for _ in 0..garbage {
                    c.alloc(n1, b, &ObjSpec::data(2)).unwrap();
                }
                let o = c.alloc(n1, b, &ObjSpec::data(1)).unwrap();
                c.write_data(n1, o, 0, 2000 + i as u64).unwrap();
                c.add_root(n1, o);
                tracked.push(o);
            }
            c.map_bunch(n2, b, n1).unwrap();
            let oids: Vec<_> =
                tracked.iter().map(|&o| c.oid_at_local(n1, o).unwrap()).collect();
            c.run_bgc(n1, b).unwrap();
            let batch: Vec<Relocation> = tracked
                .iter()
                .zip(&oids)
                .filter_map(|(&old, &oid)| {
                    let to = c.gc.node(n1).directory.resolve(old);
                    (to != old).then_some(Relocation { oid, from: old, to })
                })
                .collect();
            prop_assert!(!batch.is_empty(), "the collection moved something");

            let snapshot = |c: &Cluster| -> Vec<(Addr, u64)> {
                tracked
                    .iter()
                    .map(|&old| {
                        let cur = c.gc.node(n2).directory.resolve(old);
                        (cur, c.read_data(n2, old, 0).unwrap())
                    })
                    .collect()
            };
            integration::apply_relocations_at(&mut c.gc, n2, &batch, &mut c.mems);
            let once = snapshot(&c);
            for _ in 1..dups {
                integration::apply_relocations_at(&mut c.gc, n2, &batch, &mut c.mems);
            }
            prop_assert_eq!(once, snapshot(&c));
            for (i, &old) in tracked.iter().enumerate() {
                prop_assert_eq!(c.read_data(n2, old, 0).unwrap(), 2000 + i as u64);
            }
        }
    }
}
