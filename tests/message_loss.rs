//! Message-loss behaviour (paper, Section 6.1; experiment E5).
//!
//! Reachability tables are idempotent: losing one delays collection but
//! never endangers a live object, and a verbatim re-send fully recovers.
//! Scion-messages enjoy the same recovery through the tables (the cleaner
//! recreates missing scions from reported stubs); the window between a lost
//! scion-message and the first report is the race the paper defers to
//! [Ferreira 94b] — demonstrated, not hidden, below.

use bmx_repro::prelude::*;
use bmx_repro::workloads::lists;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Losing every stub-table message keeps remote garbage uncollected
/// (liveness deferred) but reclaims nothing live (safety); re-sending the
/// same idempotent table after the network heals completes collection.
#[test]
fn lost_tables_are_recovered_by_resend() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 1.0),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(2, &[0, 1])).unwrap();
    let keep = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    let drop_me = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, keep).unwrap();
    c.write_ref(n1, src, 1, drop_me).unwrap();

    // The reference to `drop_me` dies; N1's BGC publishes a table that the
    // network eats.
    c.write_ref(n1, src, 1, Addr::NULL).unwrap();
    c.run_bgc(n1, b1).unwrap();
    assert!(c.net.class_stats(MsgClass::StubTable).dropped > 0, "tables were lost");

    // Liveness deferred: the stale scion still protects `drop_me`...
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 0, "stale scion keeps the garbage alive");
    // ...and safety intact: `keep` is alive and readable at its node.
    assert_eq!(c.read_data(n2, keep, 0).unwrap(), 0);

    // The network heals; the idempotent table is re-sent verbatim.
    c.net.set_drop(MsgClass::StubTable, 0.0);
    c.resend_report(n1, b1, &[n2]).unwrap();
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 1, "garbage collected after recovery");
    assert_eq!(c.read_data(n2, keep, 0).unwrap(), 0, "live object untouched");
    c.assert_gc_acquired_no_tokens();
}

/// Duplicated tables (re-sent although the original arrived) are harmless:
/// processing is idempotent.
#[test]
fn duplicate_tables_are_idempotent() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();
    c.run_bgc(n1, b1).unwrap();
    // Re-send the same epoch's table five times.
    for _ in 0..5 {
        c.resend_report(n1, b1, &[n2]).unwrap();
    }
    // The scion survives (the stub is still reported) and the target lives.
    assert_eq!(c.gc.node(n2).bunch(b2).unwrap().scion_table.inter.len(), 1);
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 0);
}

/// Sustained 50% loss on table traffic across repeated churn rounds:
/// liveness may lag, but nothing live is ever reclaimed anywhere.
#[test]
fn sustained_loss_never_reclaims_live_objects() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, 0.5),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    // A live cross-bunch structure: a list in B1, plus a rooted bridge
    // object in B1 holding the only reference to an anchor in B2.
    let list = lists::build_list(&mut c, n1, b1, 6, 0).unwrap();
    c.add_root(n1, list.head);
    let anchor = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.write_data(n2, anchor, 0, 4242).unwrap();
    let bridge = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n1, bridge);
    c.write_ref(n1, bridge, 0, anchor).unwrap();

    // Churn: every round detaches garbage in both bunches and collects on
    // both nodes, under 50% table loss.
    for round in 0..10u64 {
        let junk1 = c.alloc(n1, b1, &ObjSpec::data(1)).unwrap();
        let junk2 = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
        let _ = (junk1, junk2); // immediately unreachable
        c.run_bgc(n1, b1).unwrap();
        c.run_bgc(n2, b2).unwrap();
        // Safety probe every round: the list walks, the anchor answers.
        let head = c.gc.node(n1).directory.resolve(list.head);
        let payloads = lists::read_payloads(&c, n1, head).unwrap();
        assert_eq!(payloads.len(), 6, "round {round}: list intact");
        assert_eq!(c.read_data(n2, anchor, 0).unwrap(), 4242, "round {round}: anchor intact");
    }
    assert!(c.net.class_stats(MsgClass::StubTable).dropped > 0, "loss actually happened");
    c.assert_gc_acquired_no_tokens();
}

/// A lost scion-message is recovered by the very next reachability table:
/// the cleaner recreates the scion from the reported stub.
#[test]
fn lost_scion_message_recovered_by_table() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::ScionMessage, 1.0),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();
    // The scion-message was eaten.
    assert_eq!(c.gc.node(n2).bunch(b2).map_or(0, |b| b.scion_table.inter.len()), 0);
    // N1's next collection reports the stub; the cleaner recreates the
    // missing scion at N2.
    c.run_bgc(n1, b1).unwrap();
    assert_eq!(c.gc.node(n2).bunch(b2).unwrap().scion_table.inter.len(), 1);
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 0, "target protected again");
}

/// The documented race (Section 6.1 defers it to the companion paper): if
/// the target's collection runs inside the window between a lost
/// scion-message and the first table from the source, the target is
/// unprotected. The reproduction preserves — rather than papers over — this
/// behaviour; the test pins it down.
#[test]
fn scion_message_loss_window_is_the_known_race() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::ScionMessage, 1.0),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n2).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n2, b2, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();
    // The target's BGC runs inside the window: the object is unprotected.
    let s = c.run_bgc(n2, b2).unwrap();
    assert_eq!(s.reclaimed, 1, "the race window is real (and documented)");
}
