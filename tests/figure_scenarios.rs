//! Executable reproductions of the paper's worked figures (experiments
//! F1–F4 in EXPERIMENTS.md).
//!
//! Node naming follows the paper: N1, N2, N3 map to `NodeId(0..3)`.

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Figure 1: bunch B1 mapped on N1 and N2, bunch B2 only on N3. The
/// inter-bunch reference O3 -> O5 created at N2 produces exactly one
/// inter-bunch SSP (stub at N2, scion at N3) even though O3 is cached on
/// two nodes; moving O3's write token from N2 to N1 produces the
/// intra-bunch SSP from N1 to N2.
#[test]
fn figure1_stub_and_scion_tables() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(3));
    let (n1, n2, n3) = (n(0), n(1), n(2));
    let b1 = c.create_bunch(n1).unwrap();
    let b2 = c.create_bunch(n3).unwrap();

    let o1 = c.alloc(n1, b1, &ObjSpec::with_refs(2, &[0, 1])).unwrap();
    let o2 = c.alloc(n1, b1, &ObjSpec::data(1)).unwrap();
    let o3 = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let _o4 = c.alloc(n1, b1, &ObjSpec::data(1)).unwrap();
    let o5 = c.alloc(n3, b2, &ObjSpec::data(1)).unwrap();
    c.write_ref(n1, o1, 0, o2).unwrap();
    c.write_ref(n1, o1, 1, o3).unwrap();
    c.add_root(n1, o1);

    c.map_bunch(n2, b1, n1).unwrap();
    c.add_root(n2, o3);

    // N2 takes O3's write token and creates the inter-bunch reference.
    c.acquire_write(n2, o3).unwrap();
    c.write_ref(n2, o3, 0, o5).unwrap();
    c.release(n2, o3).unwrap();

    // Exactly one inter-bunch SSP, kept at the creating node (N2)...
    let stubs_n2 = &c.gc.node(n2).bunch(b1).unwrap().stub_table;
    assert_eq!(stubs_n2.inter().len(), 1, "one stub for O3->O5");
    assert_eq!(stubs_n2.inter()[0].target_bunch, b2);
    // ...and none at N1, despite N1 caching O3 too (Section 3.1).
    assert!(c
        .gc
        .node(n1)
        .bunch(b1)
        .is_none_or(|b| b.stub_table.inter().is_empty()));
    // The scion-message created the matching scion at N3.
    let scions_n3 = &c.gc.node(n3).bunch(b2).unwrap().scion_table;
    assert_eq!(scions_n3.inter().len(), 1);
    assert_eq!(scions_n3.inter()[0].source_node, n2);
    assert_eq!(scions_n3.inter()[0].source_bunch, b1);
    assert_eq!(c.total_stat(StatKind::ScionMessages), 1);

    // O3's write token goes from N2 to N1: the intra-bunch SSP from N1 to
    // N2 appears (stub at the new owner, scion at the old).
    c.acquire_write(n1, o3).unwrap();
    c.release(n1, o3).unwrap();
    let intra_stubs_n1 = &c.gc.node(n1).bunch(b1).unwrap().stub_table.intra();
    assert_eq!(intra_stubs_n1.len(), 1);
    assert_eq!(intra_stubs_n1[0].scion_at, n2);
    let intra_scions_n2 = &c.gc.node(n2).bunch(b1).unwrap().scion_table.intra();
    assert_eq!(intra_scions_n2.len(), 1);
    assert_eq!(intra_scions_n2[0].stub_at, n1);
    // No further scion-messages were needed: the SSP rode the grant.
    assert_eq!(c.total_stat(StatKind::ScionMessages), 1);

    // Token markers of the figure: N1 owns O3 with the write token; N2's
    // copy is inconsistent.
    assert_eq!(c.token_at(n1, o3).unwrap(), Token::Write);
    assert_eq!(c.token_at(n2, o3).unwrap(), Token::None);
    let oid3 = c.oid_at_local(n1, o3).unwrap();
    assert!(c.engine.is_owner(n1, oid3));
}

/// Figure 2: the BGC at N2 copies only the locally owned O2, merely scans
/// O1 and O3, leaves a forwarding header, and updates N2's references
/// without acquiring any token. N1 keeps using the old address until a
/// synchronization point brings it the relocation lazily.
#[test]
fn figure2_bgc_copies_only_locally_owned() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (n(0), n(1));
    let b1 = c.create_bunch(n1).unwrap();
    let o1 = c.alloc(n1, b1, &ObjSpec::with_refs(2, &[0, 1])).unwrap();
    let o2 = c.alloc(n1, b1, &ObjSpec::data(1)).unwrap();
    let o3 = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.write_ref(n1, o1, 0, o2).unwrap();
    c.write_ref(n1, o1, 1, o3).unwrap();
    c.write_ref(n1, o3, 0, o2).unwrap();
    c.write_data(n1, o2, 0, 777).unwrap();
    c.add_root(n1, o1);
    c.map_bunch(n2, b1, n1).unwrap();
    c.add_root(n2, o1);

    // O2's ownership moves to N2 (so N2's BGC may copy it).
    c.acquire_write(n2, o2).unwrap();
    c.release(n2, o2).unwrap();

    let before_msgs = c.net.total_sent();
    let stats = c.run_bgc(n2, b1).unwrap();
    assert_eq!(stats.copied, 1, "only the locally owned O2 is copied");
    assert_eq!(stats.scanned, 2, "O1 and O3 are merely scanned");
    c.assert_gc_acquired_no_tokens();

    // A forwarding pointer was written into O2's header at N2 and N2's
    // local references were updated — strictly locally.
    let v = bmx_repro::addr::object::view(&c.mems[1], o2).unwrap();
    assert!(v.is_forwarded());
    let o2_new = v.forwarding;
    assert_ne!(o2_new, o2);
    assert_eq!(
        bmx_repro::addr::object::read_ref_field(&c.mems[1], o1, 0).unwrap(),
        o2_new,
        "O1's pointer updated at N2 without O1's write token"
    );
    assert_eq!(
        bmx_repro::addr::object::read_ref_field(&c.mems[1], o3, 0).unwrap(),
        o2_new,
        "O3's pointer updated at N2"
    );

    // N1 has not been informed: its replica still uses the old address.
    assert_eq!(
        bmx_repro::addr::object::read_ref_field(&c.mems[0], o1, 0).unwrap(),
        o2
    );
    assert!(!bmx_repro::addr::object::view(&c.mems[0], o2)
        .unwrap()
        .is_forwarded());

    // Both mutators keep working correctly despite the divergence
    // (Section 4.2): the data is consistent on each node's current copy.
    assert_eq!(c.read_data(n1, o2, 0).unwrap(), 777);
    assert_eq!(c.read_data(n2, o2, 0).unwrap(), 777);
    assert!(
        c.ptr_eq(n2, o2, o2_new),
        "the pointer-comparison operation sees through forwarding"
    );

    // A synchronization point (N1 acquires O2) carries the relocation
    // lazily — piggy-backed, with no extra messages beyond the protocol's.
    c.acquire_read(n1, o2).unwrap();
    c.release(n1, o2).unwrap();
    assert!(bmx_repro::addr::object::view(&c.mems[0], o2)
        .unwrap()
        .is_forwarded());
    assert_eq!(c.read_data(n1, o2, 0).unwrap(), 777);
    assert_eq!(c.total_stat(StatKind::ExplicitRelocationMessages), 0);
    let extra_gc_msgs = c.net.class_stats(MsgClass::GcBackground).sent
        + c.net.class_stats(MsgClass::StubTable).sent;
    assert_eq!(extra_gc_msgs, c.net.class_stats(MsgClass::StubTable).sent);
    let _ = before_msgs;
}

/// Figure 3: the four write-token-acquire cases and the Section 5
/// invariants. (a)/(c): nothing relocated, plain transfer. (b): relocations
/// at the granter ride the grant and are processed before the acquire
/// completes (invariant 1). (d): the requester relocated a referent itself;
/// the incoming object's pointers are rewritten to the local to-space
/// copies.
#[test]
fn figure3_write_acquire_cases() {
    // Case (a)/(c): no relocations anywhere.
    {
        let mut c = Cluster::new(ClusterConfig::with_nodes(2));
        let (n1, n2) = (n(0), n(1));
        let b = c.create_bunch(n1).unwrap();
        let o1 = c.alloc(n1, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        let o2 = c.alloc(n1, b, &ObjSpec::data(1)).unwrap();
        c.write_ref(n1, o1, 0, o2).unwrap();
        c.map_bunch(n2, b, n1).unwrap();
        c.acquire_write(n2, o1).unwrap();
        c.release(n2, o1).unwrap();
        assert_eq!(c.read_ref(n2, o1, 0).unwrap(), o2, "address unchanged");
    }
    // Case (b): O1 and O2 copied at the granter before the acquire.
    {
        let mut c = Cluster::new(ClusterConfig::with_nodes(2));
        let (n1, n2) = (n(0), n(1));
        let b = c.create_bunch(n1).unwrap();
        let o1 = c.alloc(n1, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        let o2 = c.alloc(n1, b, &ObjSpec::data(1)).unwrap();
        c.write_ref(n1, o1, 0, o2).unwrap();
        c.write_data(n1, o2, 0, 5).unwrap();
        c.add_root(n1, o1);
        c.map_bunch(n2, b, n1).unwrap();
        c.run_bgc(n1, b).unwrap(); // copies O1 and O2 at N1
        let o1_new_at_n1 = c.gc.node(n1).directory.resolve(o1);
        assert_ne!(o1_new_at_n1, o1);

        c.acquire_write(n2, o1).unwrap();
        c.release(n2, o1).unwrap();
        // Invariant 1: by the time the acquire completed, N2 knows both new
        // locations; its replica of O1 lives at the new address and points
        // at the new O2.
        let dir2 = &c.gc.node(n2).directory;
        assert_eq!(dir2.resolve(o1), o1_new_at_n1);
        let o2_new = c.gc.node(n1).directory.resolve(o2);
        assert_eq!(dir2.resolve(o2), o2_new);
        assert_eq!(
            bmx_repro::addr::object::read_ref_field(&c.mems[1], o1_new_at_n1, 0).unwrap(),
            o2_new
        );
        assert_eq!(
            c.read_data(n2, o2, 0).unwrap(),
            5,
            "old address still works via forwarding"
        );
    }
    // Case (d): the *requester* copied the referent before the acquire.
    {
        let mut c = Cluster::new(ClusterConfig::with_nodes(2));
        let (n1, n2) = (n(0), n(1));
        let b = c.create_bunch(n1).unwrap();
        let o1 = c.alloc(n1, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        let o2 = c.alloc(n1, b, &ObjSpec::data(1)).unwrap();
        c.write_ref(n1, o1, 0, o2).unwrap();
        c.write_data(n1, o2, 0, 9).unwrap();
        c.map_bunch(n2, b, n1).unwrap();
        c.add_root(n2, o1);
        // N2 takes O2's ownership and collects: O2 moves at N2 only.
        c.acquire_write(n2, o2).unwrap();
        c.release(n2, o2).unwrap();
        c.run_bgc(n2, b).unwrap();
        let o2_new_at_n2 = c.gc.node(n2).directory.resolve(o2);
        assert_ne!(o2_new_at_n2, o2);
        // N1 still has O1 (whose field holds O2's old address). N2 acquires
        // O1: the incoming pointers must be rewritten to N2's to-space.
        c.acquire_write(n2, o1).unwrap();
        c.release(n2, o1).unwrap();
        let o1_cur = c.gc.node(n2).directory.resolve(o1);
        assert_eq!(
            bmx_repro::addr::object::read_ref_field(&c.mems[1], o1_cur, 0).unwrap(),
            o2_new_at_n2,
            "case (d): installed refs follow the requester's local forwarding"
        );
        assert_eq!(c.read_data(n2, o2, 0).unwrap(), 9);
    }
}

/// Figure 4 / Section 6.2: the full life cycle of a replicated object held
/// by intra-bunch SSPs — including the cycle-breaking omission of the
/// exiting ownerPtr for objects reachable only through an intra-bunch
/// scion — down to the cascaded reclamation on all three nodes and of the
/// inter-bunch target.
#[test]
fn figure4_intra_ssp_cascade_deletion() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(3));
    let (n1, n2, n3) = (n(0), n(1), n(2));
    // O1 lives in B1 created at N3, which also created the inter-bunch
    // reference O1 -> X (X in B2 at N3), so N3 holds inter-bunch stubs.
    let b1 = c.create_bunch(n3).unwrap();
    let b2 = c.create_bunch(n3).unwrap();
    let o1 = c.alloc(n3, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let x = c.alloc(n3, b2, &ObjSpec::data(1)).unwrap();
    c.write_ref(n3, o1, 0, x).unwrap();

    c.map_bunch(n2, b1, n3).unwrap();
    c.map_bunch(n1, b1, n3).unwrap();

    // Ownership of O1 moves to N2: intra-bunch SSP stub@N2 -> scion@N3.
    c.acquire_write(n2, o1).unwrap();
    c.release(n2, o1).unwrap();
    assert_eq!(c.gc.node(n2).bunch(b1).unwrap().stub_table.intra().len(), 1);
    assert_eq!(
        c.gc.node(n3).bunch(b1).unwrap().scion_table.intra().len(),
        1
    );

    // The only mutator reference is at N1.
    c.acquire_read(n1, o1).unwrap();
    c.release(n1, o1).unwrap();
    let root = c.add_root(n1, o1);
    let oid1 = c.oid_at_local(n3, o1).unwrap();
    let oid_x = c.oid_at_local(n3, x).unwrap();

    // Step A: BGC at N1 — O1 is live there; its exiting ownerPtr now names
    // N2 (the owner), so the cleaner at N3 drops N1's entering pointer.
    c.run_bgc(n1, b1).unwrap();
    assert!(
        !c.engine.obj_state(n3, oid1).unwrap().entering.contains(&n1),
        "N1's ownerPtr no longer enters N3"
    );

    // Step B: BGC at N3 — O1 is reachable *only* through the intra-bunch
    // scion, so it stays alive but publishes no exiting ownerPtr; the
    // cleaner at N2 drops N3's entering pointer. This breaks the
    // self-keeping cycle of Section 6.2.
    let s = c.run_bgc(n3, b1).unwrap();
    assert_eq!(s.reclaimed, 0, "O1 must survive at N3 (intra scion)");
    let entering_n2 = &c.engine.obj_state(n2, oid1).unwrap().entering;
    assert!(entering_n2.contains(&n1), "N1 still enters N2");
    assert!(
        !entering_n2.contains(&n3),
        "N3's ownerPtr was omitted and cleaned"
    );

    // Step C: BGC at N2 — O1 alive via N1's entering pointer; the intra
    // stub to N3 is retained.
    let s = c.run_bgc(n2, b1).unwrap();
    assert_eq!(s.reclaimed, 0);
    assert_eq!(c.gc.node(n2).bunch(b1).unwrap().stub_table.intra().len(), 1);

    // Step D: the mutator at N1 drops its reference; N1's BGC reclaims the
    // local replica and stops reporting the exiting pointer.
    c.remove_root(n1, root);
    let s = c.run_bgc(n1, b1).unwrap();
    assert_eq!(s.reclaimed, 1, "O1's replica dies at N1");
    assert!(c.engine.obj_state(n2, oid1).unwrap().entering.is_empty());

    // Step E: BGC at N2 — nothing reaches O1 any more; it is reclaimed and
    // the intra-bunch stub leaves the new stub table, so the cleaner at N3
    // deletes the intra-bunch scion.
    let s = c.run_bgc(n2, b1).unwrap();
    assert_eq!(s.reclaimed, 1, "O1 dies at N2");
    assert!(c
        .gc
        .node(n3)
        .bunch(b1)
        .unwrap()
        .scion_table
        .intra()
        .is_empty());

    // Step F: BGC at N3 — O1 dies on its last node; its inter-bunch stub is
    // dropped and the local cleaner prunes X's scion.
    let s = c.run_bgc(n3, b1).unwrap();
    assert_eq!(s.reclaimed, 1, "O1 dies at N3");
    assert!(c
        .gc
        .node(n3)
        .bunch(b1)
        .unwrap()
        .stub_table
        .inter()
        .is_empty());
    assert!(c
        .gc
        .node(n3)
        .bunch(b2)
        .unwrap()
        .scion_table
        .inter()
        .is_empty());

    // Step G: BGC of B2 at N3 — the inter-bunch target X is finally
    // reclaimed too.
    let s = c.run_bgc(n3, b2).unwrap();
    assert_eq!(s.reclaimed, 1, "X dies once its scion is gone");
    assert!(c.engine.obj_state(n3, oid_x).is_none());

    // Throughout all of this the collector acquired no tokens.
    c.assert_gc_acquired_no_tokens();
}
