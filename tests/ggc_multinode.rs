//! Group collection with replicated bunches: the GGC's group-internal scion
//! exclusion must never override remote liveness (entering ownerPtrs and
//! mutator roots on other nodes), and cycles spanning *nodes* need the
//! reachability-table cascade plus a group collection to fall.

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// A dead intra-node inter-bunch cycle is collected by the GGC even while
/// another node holds (unreachable) replicas of one of its bunches — the
/// remote replicas die via the table cascade afterwards.
#[test]
fn ggc_with_remote_replicas_of_group_bunches() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n0, n1) = (n(0), n(1));
    // Cycle: o1 (B1) -> o2 (B2) -> o1, built at node 0.
    let b1 = c.create_bunch(n0).unwrap();
    let b2 = c.create_bunch(n0).unwrap();
    let o1 = c.alloc(n0, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let o2 = c.alloc(n0, b2, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.write_ref(n0, o1, 0, o2).unwrap();
    c.write_ref(n0, o2, 0, o1).unwrap();
    // Node 1 maps B1 (holding a replica of o1) but never roots anything.
    c.map_bunch(n1, b1, n0).unwrap();

    // Node 1's replica registration gives node 0 an entering ownerPtr for
    // o1, which correctly blocks the GGC at node 0.
    let s = c.run_ggc(n0).unwrap();
    assert_eq!(s.reclaimed, 0, "remote replica shields the cycle");

    // Node 1 collects: its unreachable replica of o1 dies, the report
    // clears the entering pointer, and node 0's next GGC takes the cycle.
    c.run_bgc(n1, b1).unwrap();
    let s = c.run_ggc(n0).unwrap();
    assert_eq!(s.reclaimed, 2, "cycle falls once the shield is gone");
    c.assert_gc_acquired_no_tokens();
}

/// A *live* object in a group bunch — rooted only on a remote node — must
/// survive the GGC, cycle exclusion notwithstanding.
#[test]
fn ggc_respects_remote_mutator_roots() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n0, n1) = (n(0), n(1));
    let b1 = c.create_bunch(n0).unwrap();
    let b2 = c.create_bunch(n0).unwrap();
    let o1 = c.alloc(n0, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let o2 = c.alloc(n0, b2, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.write_ref(n0, o1, 0, o2).unwrap();
    c.write_ref(n0, o2, 0, o1).unwrap();
    c.map_bunch(n1, b1, n0).unwrap();
    c.acquire_read(n1, o1).unwrap();
    c.release(n1, o1).unwrap();
    c.add_root(n1, o1);

    // Settle node 1's exiting table so node 0 sees the current shield.
    c.run_bgc(n1, b1).unwrap();
    for _round in 0..3 {
        let s = c.run_ggc(n0).unwrap();
        assert_eq!(s.reclaimed, 0, "remotely rooted cycle must survive");
        c.run_bgc(n1, b1).unwrap();
    }
    // The remote mutator can still traverse the whole cycle.
    c.acquire_read(n1, o1).unwrap();
    let o2_seen = c.read_ref(n1, o1, 0).unwrap();
    c.release(n1, o1).unwrap();
    assert!(c.ptr_eq(n1, o2_seen, o2));
}

/// A dead cycle whose *ownership* is split across nodes is kept alive by a
/// loop of entering ownerPtrs that crosses sites — the class of garbage
/// the paper's single-site group collector admittedly does not reach
/// ("if an application does not move bunches around the nodes there is a
/// possibility that some dead cycles may not ever be removed at all",
/// Section 7). The paper's own remedy — ownership movement — then lets the
/// cascade collect it. Both halves are pinned down here.
#[test]
fn split_ownership_cycle_needs_consolidation() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n0, n1) = (n(0), n(1));
    let b1 = c.create_bunch(n0).unwrap();
    let b2 = c.create_bunch(n0).unwrap();
    let o1 = c.alloc(n0, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let o2 = c.alloc(n0, b2, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.write_ref(n0, o1, 0, o2).unwrap();
    c.write_ref(n0, o2, 0, o1).unwrap();
    c.map_bunch(n1, b1, n0).unwrap();
    c.map_bunch(n1, b2, n0).unwrap();
    // Node 1 takes ownership of o2, then forgets it (no roots anywhere).
    c.acquire_write(n1, o2).unwrap();
    c.release(n1, o2).unwrap();

    // Part 1 — the limitation: each node's replicas shield the other's
    // through entering ownerPtrs (o1's at node 0 fed by node 1's exiting
    // list and vice versa for o2), and single-site group collections can
    // never break the cross-site loop.
    let mut reclaimed = 0;
    for _ in 0..4 {
        reclaimed += c.run_ggc(n0).unwrap().reclaimed;
        reclaimed += c.run_ggc(n1).unwrap().reclaimed;
    }
    assert_eq!(reclaimed, 0, "split-ownership cycles survive per-site GGC");

    // Part 2 — the remedy: consolidate ownership at one site ("move
    // bunches around the nodes"); the other site's replicas then die, the
    // tables cascade, and the consolidated site's GGC takes the cycle.
    c.acquire_write(n0, o2).unwrap();
    c.release(n0, o2).unwrap();
    let mut reclaimed = 0;
    for _ in 0..4 {
        reclaimed += c.run_ggc(n1).unwrap().reclaimed;
        reclaimed += c.run_ggc(n0).unwrap().reclaimed;
    }
    assert_eq!(
        reclaimed, 4,
        "cycle reclaimed on both nodes after consolidation"
    );
    assert!(c.oid_at_local(n0, o1).is_err());
    assert!(c.oid_at_local(n1, o2).is_err());
    c.assert_gc_acquired_no_tokens();
}
