//! Persistence by reachability, end to end: only reachable objects reach
//! the disk; crash recovery restores them; torn logs are survived.

use bmx_repro::bmx::persist;
use bmx_repro::prelude::*;
use bmx_repro::rvm::{Rvm, RvmOptions};
use bmx_repro::workloads::lists;
use std::path::PathBuf;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bmx-persist-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Garbage never reaches the disk: a reachability checkpoint of a heap
/// that is mostly garbage is much smaller than a naive checkpoint, and
/// after recovery the garbage is simply absent.
#[test]
fn unreachable_objects_are_not_persisted() {
    let n0 = n(0);
    let build = |c: &mut Cluster| {
        let b = c.create_bunch(n0).unwrap();
        let list = lists::build_list(c, n0, b, 10, 0).unwrap();
        let root = c.add_root(n0, list.head);
        // 200 unreachable objects dwarf the live list.
        for _ in 0..200 {
            c.alloc(n0, b, &ObjSpec::data(6)).unwrap();
        }
        (b, list, root)
    };

    // Naive checkpoint (garbage still resident).
    let naive_bytes = {
        let dir = fresh_dir("naive");
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let (b, _, _) = build(&mut c);
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        persist::checkpoint_bunch(&mut c, n0, b, &mut rvm).unwrap();
        rvm.log_bytes()
    };

    // Reachability checkpoint.
    let dir = fresh_dir("reach");
    let (reach_bytes, b, head) = {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let (b, _list, root) = build(&mut c);
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        persist::checkpoint_reachable(&mut c, n0, b, &mut rvm).unwrap();
        // The compaction (and the from-space reuse inside
        // checkpoint_reachable) rewrote the root; read the head through it.
        let head = c.root(n0, root).unwrap();
        (rvm.log_bytes(), b, head)
    };
    assert!(
        reach_bytes * 3 < naive_bytes,
        "reachability checkpoint must be much smaller: {reach_bytes} vs {naive_bytes}"
    );

    // Recovery: the live list is whole; the garbage was never written.
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let b2 = c.create_bunch(n0).unwrap();
    assert_eq!(b2, b);
    let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
    persist::recover_bunch(&mut c, n0, b2, &mut rvm).unwrap();
    let payloads = lists::read_payloads(&c, n0, head).unwrap();
    assert_eq!(payloads, (0..10).collect::<Vec<_>>());
}

/// Checkpoints are atomic: a crash between two checkpoints recovers the
/// earlier one, never a mixture.
#[test]
fn checkpoints_are_atomic_versions() {
    let dir = fresh_dir("versions");
    let n0 = n(0);
    let (b, cell) = {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let b = c.create_bunch(n0).unwrap();
        let list = lists::build_list(&mut c, n0, b, 4, 0).unwrap();
        c.add_root(n0, list.head);
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        persist::checkpoint_bunch(&mut c, n0, b, &mut rvm).unwrap();
        // Mutate and checkpoint again.
        c.write_data(n0, list.cells[2], lists::PAYLOAD, 777)
            .unwrap();
        persist::checkpoint_bunch(&mut c, n0, b, &mut rvm).unwrap();
        (b, list.cells[2])
    };
    // Recover: the *second* checkpoint's value is visible (both committed;
    // the log replays in order).
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let b2 = c.create_bunch(n0).unwrap();
    let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
    persist::recover_bunch(&mut c, n0, b2, &mut rvm).unwrap();
    assert_eq!(c.read_data(n0, cell, lists::PAYLOAD).unwrap(), 777);
    let _ = b;
}

/// A torn tail in the log (crash mid-append) is detected and discarded;
/// the previous committed state recovers.
#[test]
fn torn_log_tail_recovers_previous_checkpoint() {
    let dir = fresh_dir("torn");
    let n0 = n(0);
    let (b, cell) = {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let b = c.create_bunch(n0).unwrap();
        let list = lists::build_list(&mut c, n0, b, 3, 0).unwrap();
        c.add_root(n0, list.head);
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        persist::checkpoint_bunch(&mut c, n0, b, &mut rvm).unwrap();
        (b, list.cells[1])
    };
    // Corrupt: append half a record by hand (simulated crash mid-write).
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("rvm.log"))
            .unwrap();
        f.write_all(&[0x52, 0x56, 0x4D, 0x31, 0x01, 0x00, 0x00])
            .unwrap();
    }
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let b2 = c.create_bunch(n0).unwrap();
    let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
    persist::recover_bunch(&mut c, n0, b2, &mut rvm).unwrap();
    assert_eq!(c.read_data(n0, cell, lists::PAYLOAD).unwrap(), 1);
    let _ = b;
}

/// Checkpoint -> run more mutations and collections -> checkpoint again ->
/// crash -> recover: the second image wins, forwarding state included.
#[test]
fn checkpoint_after_collection_round_trips_forwarding() {
    let dir = fresh_dir("fwd");
    let n0 = n(0);
    let (b, old_head, payloads_expected) = {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let b = c.create_bunch(n0).unwrap();
        let list = lists::build_list(&mut c, n0, b, 6, 100).unwrap();
        c.add_root(n0, list.head);
        c.run_bgc(n0, b).unwrap(); // relocates everything; from-space keeps headers
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        persist::checkpoint_bunch(&mut c, n0, b, &mut rvm).unwrap();
        (b, list.head, (100..106).collect::<Vec<u64>>())
    };
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let b2 = c.create_bunch(n0).unwrap();
    let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
    persist::recover_bunch(&mut c, n0, b2, &mut rvm).unwrap();
    // The OLD head address still works: recovery rebuilt the forwarding
    // knowledge from the persisted headers.
    assert_eq!(
        lists::read_payloads(&c, n0, old_head).unwrap(),
        payloads_expected
    );
    let _ = b;
}
