//! Chaos suite: the full fault schedule against a live, churning cluster.
//!
//! Each run drives a 3-node cluster — per-link loss, message duplication,
//! latency jitter, a timed partition that heals, and a node crash/restart —
//! while the mutator churns garbage, migrates ownership, and collects. The
//! run is completely determined by one `u64` seed: the same seed replays
//! the identical fault schedule, delivery trace, and counters, which is how
//! a failing nightly seed is reproduced locally (`CHAOS_SEEDS=0x...`).
//!
//! The acceptance gate is the paper's safety claim under its weakest
//! transport assumptions (Section 6.1): whatever the network does to
//! loss-tolerant GC traffic, no reachable object is ever reclaimed. The
//! liveness half (garbage eventually collected) is recovered by the
//! automatic retry daemon once the network heals.

use bmx::audit;
use bmx_net::FaultStats;
use bmx_repro::metrics;
use bmx_repro::prelude::*;
use bmx_repro::trace;
use bmx_repro::workloads::{churn, lists};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Flight-recorder depth per run: enough to hold the last few rounds of a
/// failing run without growing with run length.
const FLIGHT_RECORDER_CAP: usize = 8_192;

/// Fault windows (ticks). Setup must finish before `PARTITION_START`; the
/// run drives rounds until past `CRASH_END`, then settles.
const PARTITION_START: u64 = 900;
const PARTITION_END: u64 = 1200;
const CRASH_START: u64 = 1600;
const CRASH_END: u64 = 1800;
const RUN_UNTIL: u64 = 2200;

fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .all_links(LinkFault {
            drop: 0.12,
            duplicate: 0.25,
            jitter: 3,
        })
        .partition(vec![n(0)], vec![n(1), n(2)], PARTITION_START, PARTITION_END)
        .crash(n(2), CRASH_START, CRASH_END)
}

/// Everything a run produces that must replay identically from the seed.
#[derive(Debug, PartialEq)]
struct ChaosSummary {
    counters: Vec<Vec<u64>>,
    fault: FaultStats,
    per_class: Vec<(MsgClass, u64, u64, u64)>,
    rounds: usize,
}

fn run_chaos(seed: u64) -> ChaosSummary {
    // Always-on flight recorder: bounded, so it never grows with the run;
    // on a panic the sweep below dumps its tail next to the replay seed.
    // Tracing is observational only — the replay test in this file compares
    // summaries produced with the recorder installed both times, and the
    // traced-vs-untraced identity is pinned by `tests/trace_invariants.rs`.
    trace::install_ring(FLIGHT_RECORDER_CAP);
    // Metrics ride along on every chaos run: the watchdogs must stay silent
    // on a green soak (a firing leak detector fails the run even when the
    // safety gate passes), and each seed leaves a queryable snapshot next
    // to the flight-recorder artifacts. Instrumentation is observational —
    // `tests/metrics_plane.rs` pins the metered-vs-unmetered identity.
    let mreg = metrics::install();
    let mut net = NetworkConfig::lossless(1).with_fault(chaos_plan());
    net.seed = seed;
    let cfg = ClusterConfig {
        nodes: 3,
        net,
        retry: Some(RetryPolicy {
            initial_interval: 4,
            backoff: 2,
            max_interval: 32,
            budget: 6,
        }),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));

    // One home bunch per node with a rooted churn registry, plus a shared
    // bunch mapped everywhere holding the long-lived structures: a list, an
    // anchor with a payload, and the migration tokens' objects.
    let mut sites = Vec::new();
    for &node in &[n0, n1, n2] {
        let b = c.create_bunch(node).unwrap();
        let reg = c.alloc(node, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(node, reg);
        sites.push((node, b, reg));
    }
    let shared = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, shared, 6, 0).unwrap();
    c.add_root(n0, list.head);
    let anchor = c.alloc(n0, shared, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, anchor, 0, 4242).unwrap();
    let bridge = c.alloc(n0, shared, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n0, bridge);
    c.write_ref(n0, bridge, 0, anchor).unwrap();
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n0, shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).unwrap();
    c.map_bunch(n2, shared, n0).unwrap();
    let expected_live: Vec<(NodeId, Addr)> = sites
        .iter()
        .map(|&(node, _, reg)| (node, reg))
        .chain([(n0, list.head), (n0, anchor), (n0, bridge)])
        .chain(migrate.iter().map(|&o| (n0, o)))
        .collect();
    assert!(
        c.net.now() < PARTITION_START,
        "setup ran past the partition window (now = {})",
        c.net.now()
    );

    // Drive churn + migration + collections through every fault window. The
    // shared bunch's collector rotates across the replica nodes — replica-
    // site collection under migration is supported since the copy/
    // re-register fixes pinned by `tests/replica_bgc_regression.rs` — so
    // during the partition and the crash the reachability reports of
    // whichever side collects are dropped, which is exactly what the retry
    // daemon must recover. Only the crash window avoids n2 as collector:
    // a crashed node cannot initiate a collection.
    let mut rounds = 0;
    while c.net.now() < RUN_UNTIL {
        churn::chaos_round(&mut c, &sites, &migrate, rounds, seed).unwrap();
        let mut collector = [n0, n1, n2][rounds % 3];
        if collector == n2 && (CRASH_START..CRASH_END).contains(&c.net.now()) {
            collector = n0;
        }
        c.run_bgc(collector, shared).unwrap();
        rounds += 1;
    }
    // Let the retry daemon finish recovering lost reports.
    c.settle(5_000).unwrap();
    assert_eq!(c.retries_pending(), 0, "every report delivered or given up");

    // The gate: zero premature reclamation, full structural consistency.
    audit::assert_no_premature_reclamation(&c, &expected_live);
    c.assert_gc_acquired_no_tokens();
    assert_eq!(
        lists::read_payloads(&c, n0, list.head).unwrap().len(),
        6,
        "list intact"
    );
    assert_eq!(
        c.read_data(n0, anchor, 0).unwrap(),
        4242,
        "anchor payload intact"
    );

    // A green soak must also be watchdog-silent: an alarm here means some
    // drain-based detector saw a leak signature the functional gates missed.
    assert_eq!(
        mreg.total_alarms(),
        0,
        "watchdog alarm fired during an otherwise-green chaos run \
         (snapshot in target/chaos/metrics-seed-{seed:#x}.json)"
    );
    dump_metrics_snapshot(seed);
    metrics::disable();

    let summary = ChaosSummary {
        counters: (0..3)
            .map(|i| StatKind::ALL.iter().map(|&k| c.stats[i].get(k)).collect())
            .collect(),
        fault: c.net.fault_stats(),
        per_class: MsgClass::ALL
            .iter()
            .map(|&cl| {
                let s = c.net.class_stats(cl);
                (cl, s.sent, s.dropped, s.duplicated)
            })
            .collect(),
        rounds,
    };
    trace::disable();
    summary
}

/// Writes the run's metrics snapshot to `target/chaos/` — uploaded by the
/// nightly chaos workflow alongside the flight-recorder dumps, and the
/// first thing to diff when a seed regresses.
fn dump_metrics_snapshot(seed: u64) {
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    let snap = metrics::snapshot();
    let _ = std::fs::write(
        dir.join(format!("metrics-seed-{seed:#x}.json")),
        metrics::json::to_json(&snap),
    );
}

/// Writes the flight recorder's tail to `target/chaos/`: one
/// human-readable dump per node plus a merged Chrome trace for
/// chrome://tracing / Perfetto. Called only on a failing seed, while the
/// recorder from the panicked run is still installed.
fn dump_flight_recorders(seed: u64) -> Vec<std::path::PathBuf> {
    let records = trace::take();
    trace::disable();
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    let mut written = Vec::new();
    for node in [n(0), n(1), n(2)] {
        let lines: Vec<String> = trace::query::node_order(&records, node)
            .iter()
            .map(|r| r.to_string())
            .collect();
        let path = dir.join(format!("failing-seed-{seed:#x}-node{}.trace.txt", node.0));
        if std::fs::write(&path, lines.join("\n") + "\n").is_ok() {
            written.push(path);
        }
    }
    let json = dir.join(format!("failing-seed-{seed:#x}.trace.json"));
    if std::fs::write(&json, trace::chrome::export(&records)).is_ok() {
        written.push(json);
    }
    written
}

/// The headline chaos run: every fault kind fires, the cluster recovers,
/// nothing live is reclaimed, and the new counters prove each mechanism
/// actually engaged.
#[test]
fn chaos_run_survives_every_fault_kind() {
    let summary = run_chaos(0xC4A0_5EED);
    let fs = summary.fault;
    assert_eq!(fs.partitions_healed, 1, "the partition healed");
    assert_eq!(fs.restarts, 1, "the crashed node restarted");
    assert!(fs.link_dropped > 0, "link loss engaged");
    assert!(fs.duplicates_injected > 0, "duplication engaged");
    assert!(
        fs.partition_dropped + fs.partition_held > 0,
        "traffic crossed the partition window"
    );
    let total = |k: StatKind| -> u64 {
        let idx = StatKind::ALL
            .iter()
            .position(|&x| x as usize == k as usize)
            .unwrap();
        summary.counters.iter().map(|c| c[idx]).sum()
    };
    assert!(
        total(StatKind::RetryResends) > 0,
        "the retry daemon resent reports"
    );
    assert!(
        total(StatKind::DuplicateDeliveries) > 0,
        "duplicates were delivered and counted"
    );
    assert_eq!(
        total(StatKind::PartitionsHealed),
        3,
        "all three nodes saw the heal"
    );
    assert_eq!(total(StatKind::NodeRestarts), 1, "node 2 restarted once");
}

/// Bit-exact replay: one seed, two runs, identical counters everywhere; a
/// different seed perturbs the run.
#[test]
fn chaos_runs_replay_identically_from_the_seed() {
    let a = run_chaos(0x0D15_EA5E);
    let b = run_chaos(0x0D15_EA5E);
    assert_eq!(a, b, "same seed must reproduce identical counters");
    let c = run_chaos(0x0D15_EA5F);
    assert_ne!(
        a.per_class, c.per_class,
        "a different seed takes a different trace"
    );
}

/// Seed sweep, used by the nightly chaos job: `CHAOS_SEEDS` (comma-separated,
/// `0x`-prefixed hex or decimal) overrides the default set. A failing seed is
/// written — with the fault plan — to `target/chaos/` as a replay artifact.
#[test]
fn chaos_seed_sweep() {
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                let t = t.trim();
                match t.strip_prefix("0x") {
                    Some(h) => u64::from_str_radix(h, 16).expect("hex seed"),
                    None => t.parse().expect("decimal seed"),
                }
            })
            .collect(),
        Err(_) => vec![1, 2],
    };
    let mut failures = Vec::new();
    for seed in seeds {
        let outcome = std::panic::catch_unwind(|| run_chaos(seed));
        if let Err(panic) = outcome {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            // The panicked run's flight recorder and metrics registry are
            // still installed: dump the recorder tail (per-node timelines +
            // merged Chrome trace) and the metrics snapshot next to the
            // replay seed.
            dump_metrics_snapshot(seed);
            metrics::disable();
            let dumps = dump_flight_recorders(seed);
            let dump_list: Vec<String> = dumps
                .iter()
                .map(|p| p.to_string_lossy().into_owned())
                .collect();
            let dir = std::path::Path::new("target/chaos");
            let _ = std::fs::create_dir_all(dir);
            let artifact = dir.join(format!("failing-seed-{seed:#x}.txt"));
            let _ = std::fs::write(
                &artifact,
                format!(
                    "chaos seed: {seed:#x}\nreplay: CHAOS_SEEDS={seed:#x} cargo test \
                     --test chaos chaos_seed_sweep\nfault plan: {:#?}\npanic: {msg}\n\
                     flight recorders: {}\n",
                    chaos_plan(),
                    dump_list.join(", "),
                ),
            );
            failures.push((seed, msg));
        }
    }
    assert!(
        failures.is_empty(),
        "chaos seeds failed (replay artifacts in target/chaos/): {failures:?}"
    );
}
