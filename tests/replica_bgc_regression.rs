//! Reproduction of the ROADMAP open item "Replica-site collection under
//! migration" — kept `#[ignore]`d until the copy/re-register path is
//! fixed; the chaos suite meanwhile keeps shared-bunch collection at the
//! root holder.
//!
//! The failing shape: a shared bunch replicated on three nodes, ownership
//! of its objects migrating between the non-root replicas, with `run_bgc`
//! of the bunch *rotating across the replica nodes* (not the root
//! holder). After a collection at a replica drops a dead local replica
//! legitimately, a later re-acquire at that node trips a stale to-space
//! address (`NotAnObject`). The network is lossless — this is a seed-era
//! limitation of the copy/re-register path, not of the fault plane.
//!
//! The run captures a flight recorder; on the expected failure the tail
//! is dumped to `target/chaos/replica-bgc-regression-*` (per-node
//! timelines + merged Chrome trace) so the causal order leading into the
//! bad re-acquire can be read directly.
//!
//! Run with: `cargo test --test replica_bgc_regression -- --ignored`

use bmx_repro::prelude::*;
use bmx_repro::trace;
use bmx_repro::workloads::{churn, lists};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn dump_flight_recorders(tag: &str) {
    let records = trace::take();
    trace::disable();
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    for node in [n(0), n(1), n(2)] {
        let lines: Vec<String> = trace::query::node_order(&records, node)
            .iter()
            .map(|r| r.to_string())
            .collect();
        let _ = std::fs::write(
            dir.join(format!("{tag}-node{}.trace.txt", node.0)),
            lines.join("\n") + "\n",
        );
    }
    let _ = std::fs::write(
        dir.join(format!("{tag}.trace.json")),
        trace::chrome::export(&records),
    );
}

#[test]
#[ignore = "ROADMAP open item: replica-site collection under migration trips NotAnObject on re-acquire"]
fn rotating_replica_bgc_under_migration_survives_reacquire() {
    trace::install_ring(16_384);
    // The chaos workload on a LOSSLESS network: the rotation alone is what
    // trips the open item, not the fault plane.
    let cfg = ClusterConfig::with_nodes(3);
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));

    let mut sites = Vec::new();
    for &node in &[n0, n1, n2] {
        let b = c.create_bunch(node).unwrap();
        let reg = c.alloc(node, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(node, reg);
        sites.push((node, b, reg));
    }
    let shared = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, shared, 6, 0).unwrap();
    c.add_root(n0, list.head);
    // A churn registry IN the shared bunch: the root holder keeps creating
    // garbage in the very bunch the replicas collect.
    let shared_reg = c.alloc(n0, shared, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n0, shared_reg);
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n0, shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).unwrap();
    c.map_bunch(n2, shared, n0).unwrap();

    let mut run = move || -> Result<()> {
        for round in 0..25usize {
            churn::chaos_round(&mut c, &sites, &migrate, round, 0xBAD_5EED)?;
            churn::register_churn(&mut c, n0, shared, shared_reg, 2)?;
            // Collect the shared bunch at a NON-ROOT replica node — the
            // rotation the chaos suite avoids — and retire its from-space
            // there. The reuse step is what turns a legitimately dropped
            // replica's stale address into a landmine.
            let collector = if round % 2 == 0 { n1 } else { n2 };
            c.run_bgc(collector, shared)?;
            c.reuse_from_space(collector, shared)?;
            // Re-acquire everywhere: the open item trips NotAnObject here.
            for &o in &migrate {
                for &site in &[n0, n1, n2] {
                    c.acquire_write(site, o)?;
                    c.release(site, o)?;
                }
            }
        }
        assert_eq!(lists::read_payloads(&c, n0, list.head)?.len(), 6);
        Ok(())
    };
    if let Err(e) = run() {
        dump_flight_recorders("replica-bgc-regression");
        panic!(
            "replica-site collection under migration failed (flight \
             recorder dumped to target/chaos/replica-bgc-regression-*): {e}"
        );
    }
    trace::disable();
}
