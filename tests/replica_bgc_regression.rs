//! Regression test for the (former) ROADMAP open item "Replica-site
//! collection under migration".
//!
//! The shape that used to fail: a shared bunch replicated on three nodes,
//! ownership of its objects migrating between the non-root replicas, with
//! `run_bgc` of the bunch *rotating across the replica nodes* (not the
//! root holder) and `reuse_from_space` retiring each collection's
//! from-space. Re-acquiring by a pre-collection address then tripped
//! `NotAnObject` on a lossless network.
//!
//! The fixes this pins down:
//! - `Directory::record_move` refuses divergent edges (same `from`,
//!   different `to`) instead of clobbering the local chain;
//! - the segment server's retired-range routing preserves forwarding
//!   knowledge past `forget_range`, so stale application-held addresses
//!   stay resolvable after every replica wiped;
//! - `handle_copy_request` does not settle a retire round with an indexed
//!   relocation that dead-ends inside the retiring ranges;
//! - relocation gossip only carries a node's *current* copy (ghosts of
//!   older generations are left for the wipe);
//! - the wipe performs a final local settle (copy-out) of any remaining
//!   current resident, because per-node address divergence (Section 4.2)
//!   means remote relocation gossip alone cannot settle every replica.
//!
//! The run keeps a flight recorder; on failure the tail is dumped to
//! `target/chaos/replica-bgc-regression-*` (per-node timelines + merged
//! Chrome trace) so the causal order can be read directly.

use bmx_repro::prelude::*;
use bmx_repro::trace;
use bmx_repro::workloads::{churn, lists};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn dump_flight_recorders(tag: &str) {
    let records = trace::take();
    trace::disable();
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    for node in [n(0), n(1), n(2)] {
        let lines: Vec<String> = trace::query::node_order(&records, node)
            .iter()
            .map(|r| r.to_string())
            .collect();
        let _ = std::fs::write(
            dir.join(format!("{tag}-node{}.trace.txt", node.0)),
            lines.join("\n") + "\n",
        );
    }
    let _ = std::fs::write(
        dir.join(format!("{tag}.trace.json")),
        trace::chrome::export(&records),
    );
}

#[test]
fn rotating_replica_bgc_under_migration_survives_reacquire() {
    trace::install_ring(16_384);
    // The chaos workload on a LOSSLESS network: the rotation alone is what
    // trips the open item, not the fault plane.
    let cfg = ClusterConfig::with_nodes(3);
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));

    let mut sites = Vec::new();
    for &node in &[n0, n1, n2] {
        let b = c.create_bunch(node).unwrap();
        let reg = c.alloc(node, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(node, reg);
        sites.push((node, b, reg));
    }
    let shared = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, shared, 6, 0).unwrap();
    c.add_root(n0, list.head);
    // A churn registry IN the shared bunch: the root holder keeps creating
    // garbage in the very bunch the replicas collect.
    let shared_reg = c.alloc(n0, shared, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n0, shared_reg);
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n0, shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).unwrap();
    c.map_bunch(n2, shared, n0).unwrap();

    let mut run = move || -> Result<()> {
        for round in 0..25usize {
            churn::chaos_round(&mut c, &sites, &migrate, round, 0xBAD_5EED)?;
            churn::register_churn(&mut c, n0, shared, shared_reg, 2)?;
            // Collect the shared bunch at a NON-ROOT replica node — the
            // rotation the chaos suite avoids — and retire its from-space
            // there. The reuse step is what turns a legitimately dropped
            // replica's stale address into a landmine.
            let collector = if round % 2 == 0 { n1 } else { n2 };
            c.run_bgc(collector, shared)?;
            c.reuse_from_space(collector, shared)?;
            // Re-acquire everywhere: the open item trips NotAnObject here.
            for &o in &migrate {
                for &site in &[n0, n1, n2] {
                    c.acquire_write(site, o)?;
                    c.release(site, o)?;
                }
            }
        }
        assert_eq!(lists::read_payloads(&c, n0, list.head)?.len(), 6);
        Ok(())
    };
    if let Err(e) = run() {
        dump_flight_recorders("replica-bgc-regression");
        panic!(
            "replica-site collection under migration failed (flight \
             recorder dumped to target/chaos/replica-bgc-regression-*): {e}"
        );
    }
    trace::disable();
}
