//! Bunch protection attributes (Section 2.1): Unix-style read/write bits
//! enforced at the mutator API; the collector is exempt (its bookkeeping
//! writes are not application accesses).

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

#[test]
fn read_only_bunch_rejects_mutator_writes() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let prot = Protection {
        read: true,
        write: false,
        execute: false,
    };
    let b = c.create_bunch_with(n0, prot).unwrap();
    let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
    // Reads are fine.
    assert_eq!(c.read_data(n0, o, 1).unwrap(), 0);
    // Writes are denied, both data and pointer.
    assert!(matches!(
        c.write_data(n0, o, 1, 5),
        Err(BmxError::AccessDenied { write: true, .. })
    ));
    assert!(matches!(
        c.write_ref(n0, o, 0, Addr::NULL),
        Err(BmxError::AccessDenied { write: true, .. })
    ));
}

#[test]
fn unreadable_bunch_rejects_mutator_reads() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let prot = Protection {
        read: false,
        write: true,
        execute: false,
    };
    let b = c.create_bunch_with(n0, prot).unwrap();
    let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
    c.write_data(n0, o, 1, 9).unwrap();
    assert!(matches!(
        c.read_data(n0, o, 1),
        Err(BmxError::AccessDenied { write: false, .. })
    ));
    assert!(matches!(
        c.read_ref(n0, o, 0),
        Err(BmxError::AccessDenied { write: false, .. })
    ));
}

/// The collector is not a mutator: it collects read-only bunches freely.
#[test]
fn collector_ignores_protection() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let prot = Protection {
        read: true,
        write: false,
        execute: false,
    };
    let b = c.create_bunch_with(n0, prot).unwrap();
    let o = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.add_root(n0, o);
    let _garbage = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    let s = c.run_bgc(n0, b).unwrap();
    assert_eq!(
        s.copied, 1,
        "the collector copied (wrote) despite read-only protection"
    );
    assert_eq!(s.reclaimed, 1);
    assert_eq!(c.read_data(n0, o, 0).unwrap(), 0);
}

/// Protection survives checkpoint metadata? (It is server-side state, so a
/// same-process remap keeps it; the attribute follows the bunch, not the
/// replica.)
#[test]
fn protection_applies_on_every_node() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let n0 = n(0);
    let prot = Protection {
        read: true,
        write: false,
        execute: false,
    };
    let b = c.create_bunch_with(n0, prot).unwrap();
    let o = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.map_bunch(n(1), b, n0).unwrap();
    assert!(matches!(
        c.write_data(n(1), o, 0, 1),
        Err(BmxError::AccessDenied { .. })
    ));
    assert_eq!(c.read_data(n(1), o, 0).unwrap(), 0);
}
