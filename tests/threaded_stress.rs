//! Concurrency stress: many application threads drive one simulated
//! cluster through the actor handle — mutation, token traffic, and
//! collections race (at operation granularity) and every invariant must
//! still hold.

use std::sync::Arc;

use bmx_repro::bmx::{ClusterActor, ClusterHandle};
use bmx_repro::prelude::*;
use parking_lot::Mutex;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Four worker threads hammer a shared counter object with write-token
/// increments from different nodes while a fifth runs collections; the
/// final count equals the number of increments and the collector acquired
/// no tokens.
#[test]
fn concurrent_increments_with_collections() {
    const WORKERS: u32 = 4;
    const INCS_PER_WORKER: u64 = 50;

    let (actor, handle) = ClusterActor::spawn(ClusterConfig::with_nodes(WORKERS));
    let n0 = n(0);
    let (bunch, counter) = handle.with(move |c| {
        let b = c.create_bunch(n0).unwrap();
        let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
        c.add_root(n0, o);
        for i in 1..WORKERS {
            c.map_bunch(n(i), b, n0).unwrap();
            c.add_root(n(i), o);
        }
        (b, o)
    });

    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads = Vec::new();
    for w in 0..WORKERS {
        let h: ClusterHandle = handle.clone();
        let failures = Arc::clone(&failures);
        threads.push(std::thread::spawn(move || {
            let node = n(w);
            for i in 0..INCS_PER_WORKER {
                let res: Result<()> = h.with(move |c| {
                    c.acquire_write(node, counter)?;
                    let v = c.read_data(node, counter, 1)?;
                    c.write_data(node, counter, 1, v + 1)?;
                    c.release(node, counter)
                });
                if let Err(e) = res {
                    failures.lock().push(format!("worker {w} inc {i}: {e}"));
                    return;
                }
            }
        }));
    }
    // A collector thread interleaves BGCs on every node.
    {
        let h = handle.clone();
        let failures = Arc::clone(&failures);
        threads.push(std::thread::spawn(move || {
            for round in 0..12 {
                let node = n(round % WORKERS);
                let res: Result<_> = h.with(move |c| c.run_bgc(node, bunch));
                if let Err(e) = res {
                    failures.lock().push(format!("gc round {round}: {e}"));
                    return;
                }
                std::thread::yield_now();
            }
        }));
    }
    for t in threads {
        t.join().expect("thread");
    }
    assert!(
        failures.lock().is_empty(),
        "failures: {:?}",
        failures.lock()
    );

    let total = handle.with(move |c| {
        c.acquire_read(n0, counter).unwrap();
        let v = c.read_data(n0, counter, 1).unwrap();
        c.release(n0, counter).unwrap();
        c.assert_gc_acquired_no_tokens();
        v
    });
    assert_eq!(total, WORKERS as u64 * INCS_PER_WORKER);
    actor.shutdown();
}

/// Producers on one node and a consumer on another share a linked queue
/// through the handle; garbage from consumed cells is collected while the
/// queue is in active use.
#[test]
fn producer_consumer_through_the_actor() {
    let (actor, handle) = ClusterActor::spawn(ClusterConfig::with_nodes(2));
    let (prod, cons) = (n(0), n(1));
    let (bunch, queue) = handle.with(move |c| {
        let b = c.create_bunch(prod).unwrap();
        let q = c.alloc(prod, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(prod, q);
        c.map_bunch(cons, b, prod).unwrap();
        c.add_root(cons, q);
        (b, q)
    });

    const ITEMS: u64 = 40;
    let producer = {
        let h = handle.clone();
        std::thread::spawn(move || {
            for i in 0..ITEMS {
                h.with(move |c| -> Result<()> {
                    let item = c.alloc(prod, bunch, &ObjSpec::with_refs(2, &[0]))?;
                    c.write_data(prod, item, 1, i)?;
                    c.acquire_write(prod, queue)?;
                    let head = c.read_ref(prod, queue, 0)?;
                    c.write_ref(prod, item, 0, head)?;
                    c.write_ref(prod, queue, 0, item)?;
                    c.release(prod, queue)
                })
                .expect("produce");
            }
        })
    };
    let consumer = {
        let h = handle.clone();
        std::thread::spawn(move || {
            let mut got = Vec::new();
            let mut spins = 0;
            while got.len() < ITEMS as usize {
                let popped: Option<u64> = h
                    .with(move |c| -> Result<Option<u64>> {
                        c.acquire_write(cons, queue)?;
                        let head = c.read_ref(cons, queue, 0)?;
                        let out = if head.is_null() {
                            None
                        } else {
                            c.acquire_write(cons, head)?;
                            let v = c.read_data(cons, head, 1)?;
                            let rest = c.read_ref(cons, head, 0)?;
                            c.release(cons, head)?;
                            c.write_ref(cons, queue, 0, rest)?;
                            Some(v)
                        };
                        c.release(cons, queue)?;
                        Ok(out)
                    })
                    .expect("consume");
                match popped {
                    Some(v) => got.push(v),
                    None => {
                        spins += 1;
                        assert!(spins < 100_000, "consumer starved");
                        std::thread::yield_now();
                    }
                }
                // Periodic housekeeping on the consumer's replica.
                if got.len() % 10 == 5 {
                    h.with(move |c| c.run_bgc(cons, bunch)).expect("gc");
                }
            }
            got
        })
    };
    producer.join().expect("producer");
    let got = consumer.join().expect("consumer");
    assert_eq!(got.len(), ITEMS as usize);
    // All items seen exactly once (order may interleave).
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..ITEMS).collect::<Vec<_>>());

    handle.with(move |c| {
        c.run_bgc(prod, bunch).unwrap();
        c.run_bgc(cons, bunch).unwrap();
        c.assert_gc_acquired_no_tokens();
    });
    actor.shutdown();
}
