//! Concurrency stress: many application threads drive one simulated
//! cluster through the actor handle — mutation, token traffic, and
//! collections race (at operation granularity) and every invariant must
//! still hold. The second half hammers the lock-free scion/stub membership
//! index (`bmx_gc::gclist::ShardedSet`) directly with real threads and
//! exercises its epoch-based reclamation under seeded interleavings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bmx_common::SplitMix64;
use bmx_gc::gclist::{key2, ShardedSet};
use bmx_repro::bmx::{ClusterActor, ClusterHandle};
use bmx_repro::prelude::*;
use parking_lot::Mutex;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Four worker threads hammer a shared counter object with write-token
/// increments from different nodes while a fifth runs collections; the
/// final count equals the number of increments and the collector acquired
/// no tokens.
#[test]
fn concurrent_increments_with_collections() {
    const WORKERS: u32 = 4;
    const INCS_PER_WORKER: u64 = 50;

    let (actor, handle) = ClusterActor::spawn(ClusterConfig::with_nodes(WORKERS));
    let n0 = n(0);
    let (bunch, counter) = handle
        .with(move |c| {
            let b = c.create_bunch(n0).unwrap();
            let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            for i in 1..WORKERS {
                c.map_bunch(n(i), b, n0).unwrap();
                c.add_root(n(i), o);
            }
            (b, o)
        })
        .expect("setup");

    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads = Vec::new();
    for w in 0..WORKERS {
        let h: ClusterHandle = handle.clone();
        let failures = Arc::clone(&failures);
        threads.push(std::thread::spawn(move || {
            let node = n(w);
            for i in 0..INCS_PER_WORKER {
                let res: Result<()> = h
                    .with(move |c| {
                        c.acquire_write(node, counter)?;
                        let v = c.read_data(node, counter, 1)?;
                        c.write_data(node, counter, 1, v + 1)?;
                        c.release(node, counter)
                    })
                    .and_then(|r| r);
                if let Err(e) = res {
                    failures.lock().push(format!("worker {w} inc {i}: {e}"));
                    return;
                }
            }
        }));
    }
    // A collector thread interleaves BGCs on every node.
    {
        let h = handle.clone();
        let failures = Arc::clone(&failures);
        threads.push(std::thread::spawn(move || {
            for round in 0..12 {
                let node = n(round % WORKERS);
                let res: Result<_> = h.with(move |c| c.run_bgc(node, bunch)).and_then(|r| r);
                if let Err(e) = res {
                    failures.lock().push(format!("gc round {round}: {e}"));
                    return;
                }
                std::thread::yield_now();
            }
        }));
    }
    for t in threads {
        t.join().expect("thread");
    }
    assert!(
        failures.lock().is_empty(),
        "failures: {:?}",
        failures.lock()
    );

    let total = handle
        .with(move |c| {
            c.acquire_read(n0, counter).unwrap();
            let v = c.read_data(n0, counter, 1).unwrap();
            c.release(n0, counter).unwrap();
            c.assert_gc_acquired_no_tokens();
            v
        })
        .expect("final read");
    assert_eq!(total, WORKERS as u64 * INCS_PER_WORKER);
    actor.shutdown();
}

/// Producers on one node and a consumer on another share a linked queue
/// through the handle; garbage from consumed cells is collected while the
/// queue is in active use.
#[test]
fn producer_consumer_through_the_actor() {
    let (actor, handle) = ClusterActor::spawn(ClusterConfig::with_nodes(2));
    let (prod, cons) = (n(0), n(1));
    let (bunch, queue) = handle
        .with(move |c| {
            let b = c.create_bunch(prod).unwrap();
            let q = c.alloc(prod, b, &ObjSpec::with_refs(1, &[0])).unwrap();
            c.add_root(prod, q);
            c.map_bunch(cons, b, prod).unwrap();
            c.add_root(cons, q);
            (b, q)
        })
        .expect("setup");

    const ITEMS: u64 = 40;
    let producer = {
        let h = handle.clone();
        std::thread::spawn(move || {
            for i in 0..ITEMS {
                h.with(move |c| -> Result<()> {
                    let item = c.alloc(prod, bunch, &ObjSpec::with_refs(2, &[0]))?;
                    c.write_data(prod, item, 1, i)?;
                    c.acquire_write(prod, queue)?;
                    let head = c.read_ref(prod, queue, 0)?;
                    c.write_ref(prod, item, 0, head)?;
                    c.write_ref(prod, queue, 0, item)?;
                    c.release(prod, queue)
                })
                .and_then(|r| r)
                .expect("produce");
            }
        })
    };
    let consumer = {
        let h = handle.clone();
        std::thread::spawn(move || {
            let mut got = Vec::new();
            let mut spins = 0;
            while got.len() < ITEMS as usize {
                let popped: Option<u64> = h
                    .with(move |c| -> Result<Option<u64>> {
                        c.acquire_write(cons, queue)?;
                        let head = c.read_ref(cons, queue, 0)?;
                        let out = if head.is_null() {
                            None
                        } else {
                            c.acquire_write(cons, head)?;
                            let v = c.read_data(cons, head, 1)?;
                            let rest = c.read_ref(cons, head, 0)?;
                            c.release(cons, head)?;
                            c.write_ref(cons, queue, 0, rest)?;
                            Some(v)
                        };
                        c.release(cons, queue)?;
                        Ok(out)
                    })
                    .and_then(|r| r)
                    .expect("consume");
                match popped {
                    Some(v) => got.push(v),
                    None => {
                        spins += 1;
                        assert!(spins < 100_000, "consumer starved");
                        std::thread::yield_now();
                    }
                }
                // Periodic housekeeping on the consumer's replica.
                if got.len() % 10 == 5 {
                    h.with(move |c| c.run_bgc(cons, bunch))
                        .and_then(|r| r)
                        .expect("gc");
                }
            }
            got
        })
    };
    producer.join().expect("producer");
    let got = consumer.join().expect("consumer");
    assert_eq!(got.len(), ITEMS as usize);
    // All items seen exactly once (order may interleave).
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..ITEMS).collect::<Vec<_>>());

    handle
        .with(move |c| {
            c.run_bgc(prod, bunch).unwrap();
            c.run_bgc(cons, bunch).unwrap();
            c.assert_gc_acquired_no_tokens();
        })
        .expect("final gc");
    actor.shutdown();
}

/// Mixed-workload hammer on the real-parallelism runtime
/// (`bmx::parallel`): one mutator thread per node drives its own
/// [`NodeHandle`] — racing write-token increments on a shared counter,
/// allocation churn plus collections in a node-private bunch — while a
/// separate collector thread runs BGCs on the shared bunch from rotating
/// nodes. Unlike the actor tests above, operations here genuinely overlap:
/// an acquire blocked on a remote grant parks only its own thread while
/// the per-node driver threads move the token traffic. The run is gated
/// by the full audit set: exact counter total, transport conservation
/// (drain leaves nothing dropped or in flight), zero premature
/// reclamation of every root, structural audit clean, and the collector
/// acquired no tokens.
#[test]
fn parallel_runtime_mixed_hammer() {
    use std::time::Duration;

    use bmx_repro::bmx::audit;

    const NODES: u32 = 4;
    const INCS_PER_NODE: u64 = 30;

    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(NODES));
    let h0 = pc.handle(n(0));
    let shared_bunch = h0.create_bunch().expect("bunch");
    let counter = h0
        .alloc(shared_bunch, &ObjSpec::with_refs(2, &[0]))
        .expect("counter");
    h0.add_root(counter).expect("root");
    for i in 1..NODES {
        let h = pc.handle(n(i));
        h.map_bunch(shared_bunch, n(0)).expect("map");
        h.add_root(counter).expect("root");
    }

    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    // Every root each thread pins, collected for the liveness audit.
    let live: Arc<Mutex<Vec<(NodeId, Addr)>>> =
        Arc::new(Mutex::new((0..NODES).map(|i| (n(i), counter)).collect()));

    let mut threads = Vec::new();
    for w in 0..NODES {
        let h = pc.handle(n(w));
        let failures = Arc::clone(&failures);
        let live = Arc::clone(&live);
        threads.push(std::thread::spawn(move || {
            h.bind_metrics();
            let work = || -> Result<()> {
                // Node-private churn bunch: every allocation that is not
                // `keep` becomes garbage the interleaved BGCs reclaim.
                let mine = h.create_bunch()?;
                let keep = h.alloc(mine, &ObjSpec::with_refs(2, &[0]))?;
                h.add_root(keep)?;
                live.lock().push((h.node(), keep));
                for i in 0..INCS_PER_NODE {
                    let g = h.alloc(mine, &ObjSpec::with_refs(2, &[0]))?;
                    h.write_data(g, 1, i)?;
                    h.acquire_write(counter)?;
                    let v = h.read_data(counter, 1)?;
                    h.write_data(counter, 1, v + 1)?;
                    h.release(counter)?;
                    if i % 8 == 3 {
                        h.run_bgc(mine)?;
                    }
                }
                h.run_bgc(mine)?;
                Ok(())
            };
            if let Err(e) = work() {
                failures.lock().push(format!("node {w}: {e}"));
            }
        }));
    }
    // A collector thread interleaves BGCs on the *shared* bunch from
    // rotating nodes while the increments race.
    {
        let handles: Vec<_> = (0..NODES).map(|i| pc.handle(n(i))).collect();
        let failures = Arc::clone(&failures);
        threads.push(std::thread::spawn(move || {
            for round in 0..12usize {
                let h = &handles[round % NODES as usize];
                if let Err(e) = h.run_bgc(shared_bunch) {
                    failures
                        .lock()
                        .push(format!("shared gc round {round}: {e}"));
                    return;
                }
                std::thread::yield_now();
            }
        }));
    }
    for t in threads {
        t.join().expect("thread");
    }
    assert!(
        failures.lock().is_empty(),
        "failures: {:?}",
        failures.lock()
    );
    assert!(
        pc.ops() > u64::from(NODES) * INCS_PER_NODE,
        "ops under-counted"
    );

    assert!(
        pc.quiesce(Duration::from_secs(10)),
        "cluster failed to quiesce"
    );
    let (mut cluster, report) = pc.shutdown(Shutdown::Drain).expect("drain shutdown");
    assert_eq!(report.dropped, 0, "drain must not drop: {report:?}");
    assert_eq!(
        report.delivered, report.sent,
        "drain must deliver everything: {report:?}"
    );

    // The full audit set on the final state (the returned cluster runs
    // deterministically again, so plain ops work).
    let n0 = n(0);
    cluster.acquire_read(n0, counter).unwrap();
    let total = cluster.read_data(n0, counter, 1).unwrap();
    cluster.release(n0, counter).unwrap();
    assert_eq!(total, u64::from(NODES) * INCS_PER_NODE);
    cluster.assert_gc_acquired_no_tokens();
    audit::assert_no_premature_reclamation(&cluster, &live.lock());
}

/// Eight threads hammer the sharded lock-free set: each owns a private key
/// range (inserted fully, evens removed — fully deterministic outcome) and
/// all race on one shared contended range where conservation is checked
/// instead: per key, successful inserts minus successful removes across
/// all threads must equal its final membership. A stalled-reader thread
/// holds an epoch pin across part of the run so reclamation has to park
/// retired nodes in limbo while the races continue.
#[test]
fn sharded_set_hammer_no_lost_scions() {
    const WORKERS: u64 = 8;
    const PRIVATE: u64 = 400;
    const SHARED: u64 = 64;

    let set = Arc::new(ShardedSet::new());
    // One conservation counter per shared key: +1 per successful insert,
    // -1 per successful remove (stored biased so it can go "negative"
    // transiently from the reader's perspective; the final sum is exact
    // because all threads have joined).
    let conserved: Arc<Vec<AtomicU64>> =
        Arc::new((0..SHARED).map(|_| AtomicU64::new(1 << 32)).collect());

    let stalled = {
        let s = Arc::clone(&set);
        std::thread::spawn(move || {
            let guard = s.pin();
            for _ in 0..2000 {
                std::thread::yield_now();
            }
            drop(guard);
        })
    };

    let mut threads = Vec::new();
    for w in 0..WORKERS {
        let s = Arc::clone(&set);
        let conserved = Arc::clone(&conserved);
        threads.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(0x5C10_0000 + w);
            // Private range: all in, evens out — no other thread touches it.
            for i in 0..PRIVATE {
                assert!(s.insert(key2(w + 1, i)), "private key seen twice");
            }
            for i in (0..PRIVATE).step_by(2) {
                assert!(s.remove(key2(w + 1, i)), "private key lost");
            }
            // Shared range: racing inserts/removes with conservation
            // accounting on the operations that actually took effect.
            for _ in 0..1500 {
                let k = rng.next_u64() % SHARED;
                let key = key2(0, k);
                if rng.next_u64().is_multiple_of(2) {
                    if s.insert(key) {
                        conserved[k as usize].fetch_add(1, Ordering::Relaxed);
                    }
                } else if s.remove(key) {
                    conserved[k as usize].fetch_sub(1, Ordering::Relaxed);
                }
                if rng.next_u64().is_multiple_of(64) {
                    // Readers sprinkle pins to keep epochs contended.
                    let g = s.pin();
                    let _ = s.contains(key);
                    drop(g);
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("worker");
    }
    stalled.join().expect("stalled reader");

    // Private ranges: exact deterministic membership.
    for w in 0..WORKERS {
        for i in 0..PRIVATE {
            assert_eq!(
                set.contains(key2(w + 1, i)),
                i % 2 == 1,
                "private key ({w},{i}) corrupted"
            );
        }
    }
    // Shared range: conservation — membership equals the operation balance.
    let mut shared_live = 0u64;
    for k in 0..SHARED {
        let balance = conserved[k as usize].load(Ordering::Relaxed) - (1 << 32);
        assert!(balance <= 1, "key {k}: impossible balance {balance}");
        assert_eq!(
            set.contains(key2(0, k)),
            balance == 1,
            "key {k}: balance {balance} disagrees with membership"
        );
        shared_live += balance;
    }
    assert_eq!(
        set.len() as u64,
        WORKERS * PRIVATE / 2 + shared_live,
        "global length drifted from the surviving keys"
    );
    // Audit-clean shutdown: with every guard dropped, limbo fully drains.
    set.flush_limbo();
    assert_eq!(set.limbo_len(), 0, "limbo must drain once quiescent");
    assert!(
        set.freed() > 0,
        "the run must actually exercise reclamation"
    );
}

/// Seeded-interleaving coverage of the epoch-reclamation retire path: a
/// deterministic schedule of inserts, removes, reader pins, pin drops, and
/// limbo flushes, checked against a model set after every step. The EBR
/// safety property is asserted throughout: nodes retired while any guard
/// from the current or an older epoch is pinned are never freed until that
/// guard drops.
#[test]
fn ebr_retire_path_seeded_interleavings() {
    for seed in [0x0EBA_5E01_u64, 0x0EBA_5E02, 0x0EBA_5E03, 0x0EBA_5E04] {
        let set = ShardedSet::new();
        let mut rng = SplitMix64::new(seed);
        let mut model: std::collections::BTreeSet<u64> = Default::default();
        let mut guards = Vec::new();
        let mut retired_since_pin = 0usize;
        for step in 0..600 {
            match rng.next_u64() % 10 {
                // Insert (weight 4).
                0..=3 => {
                    let k = rng.next_u64() % 128;
                    assert_eq!(
                        set.insert(key2(7, k)),
                        model.insert(k),
                        "seed {seed:#x} step {step}"
                    );
                }
                // Remove (weight 3): retires the node through the mark +
                // unlink + limbo path.
                4..=6 => {
                    let k = rng.next_u64() % 128;
                    let removed = set.remove(key2(7, k));
                    assert_eq!(removed, model.remove(&k), "seed {seed:#x} step {step}");
                    if removed && !guards.is_empty() {
                        retired_since_pin += 1;
                    }
                }
                // Pin a reader guard (bounded so slots never exhaust).
                7 => {
                    if guards.len() < 8 {
                        if guards.is_empty() {
                            retired_since_pin = 0;
                        }
                        guards.push(set.pin());
                    }
                }
                // Drop the whole pin cohort. (Dropping only the oldest
                // guard would legally let generations counted under it be
                // freed once a younger pin takes over as the blocker, which
                // the safety assertion below could not distinguish from a
                // premature free.)
                8 => {
                    guards.clear();
                }
                // Flush: must free everything only when unpinned.
                _ => {
                    set.flush_limbo();
                    if guards.is_empty() {
                        assert_eq!(
                            set.limbo_len(),
                            0,
                            "seed {seed:#x} step {step}: quiescent flush left limbo"
                        );
                    }
                }
            }
            if !guards.is_empty() {
                // Safety: everything retired since the oldest live pin is
                // still parked. The pinned epoch can advance at most once,
                // and the generation that advance frees predates the pin,
                // so no node counted here may have been freed.
                assert!(
                    set.limbo_len() >= retired_since_pin,
                    "seed {seed:#x} step {step}: freed under a live pin"
                );
            }
            assert_eq!(set.len(), model.len(), "seed {seed:#x} step {step}");
        }
        drop(guards);
        set.flush_limbo();
        assert_eq!(set.limbo_len(), 0, "seed {seed:#x}: final drain");
        for k in 0..128 {
            assert_eq!(
                set.contains(key2(7, k)),
                model.contains(&k),
                "seed {seed:#x} key {k}"
            );
        }
    }
}
