//! Soak: a six-node cluster running a mixed workload — sharing, ownership
//! migration, churn, per-replica and group collections, from-space reuse —
//! for many rounds, with global invariants checked throughout. Also pins
//! down determinism: two identical runs produce identical counters.

use bmx_repro::prelude::*;
use bmx_repro::workloads::{db, lists};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

const NODES: u32 = 6;
const ROUNDS: u64 = 12;

struct SoakOutcome {
    reclaimed: u64,
    copied: u64,
    messages: u64,
    final_sum: u64,
}

fn run_soak(seed: u64) -> SoakOutcome {
    let mut c = Cluster::new(ClusterConfig::with_nodes(NODES));
    let hub = n(0);
    // A shared database bunch plus a per-node scratch bunch.
    let db_bunch = c.create_bunch(hub).unwrap();
    let graph = db::build_db(&mut c, hub, db_bunch, 3, 4).unwrap();
    c.add_root(hub, graph.module);
    let mut scratch = Vec::new();
    for i in 0..NODES {
        if i != 0 {
            c.map_bunch(n(i), db_bunch, hub).unwrap();
            c.add_root(n(i), graph.module);
        }
        // Scratch bunches live at the hub (single-creator rule) but are
        // shared with their "user" node.
        let b = c.create_bunch(hub).unwrap();
        let list = lists::build_list(&mut c, hub, b, 6, i as u64 * 100).unwrap();
        c.add_root(hub, list.head);
        if i != 0 {
            c.map_bunch(n(i), b, hub).unwrap();
            c.add_root(n(i), list.head);
        }
        scratch.push((b, list));
    }

    let mut rng = seed;
    let mut next = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    for round in 0..ROUNDS {
        // Ownership migration: a random node edits a random db part.
        let editor = n((next() % NODES as u64) as u32);
        let a = (next() % graph.parts.len() as u64) as usize;
        let p = (next() % graph.parts[a].len() as u64) as usize;
        let part = graph.parts[a][p];
        c.acquire_write(editor, part).unwrap();
        let v = c.read_data(editor, part, 1).unwrap();
        c.write_data(editor, part, 1, v + 1).unwrap();
        c.release(editor, part).unwrap();

        // Churn in one scratch bunch (allocation happens at the hub).
        let (b, list) = &scratch[(next() % NODES as u64) as usize];
        for _ in 0..4 {
            c.alloc(hub, *b, &ObjSpec::data(3)).unwrap(); // garbage
        }
        // A reader walks the list from a replica that has it mapped.
        let reader = if next() % 2 == 0 {
            hub
        } else {
            n((next() % NODES as u64) as u32)
        };
        if c.gc.node(reader).bunches.contains_key(b) {
            for &cell in &list.cells {
                c.acquire_read(reader, cell).unwrap();
                c.release(reader, cell).unwrap();
            }
        }

        // Housekeeping: rotate collections around the cluster.
        let collector = n((round % NODES as u64) as u32);
        if round % 3 == 2 {
            c.run_ggc(collector).unwrap();
        } else {
            // Collect only what this node has mapped (scratch bunches live
            // on the hub and their user node only).
            if c.gc.node(collector).bunches.contains_key(b) {
                c.run_bgc(collector, *b).unwrap();
            }
            c.run_bgc(collector, db_bunch).unwrap();
        }
        if round % 5 == 4 {
            let _ = c.reuse_from_space(hub, *b);
        }
        c.assert_gc_acquired_no_tokens();
        // Deep invariant audit every few rounds (headers, directories,
        // references, ownership, SSP endpoints, roots).
        if round % 4 == 0 {
            bmx_repro::bmx::audit::assert_clean(&c);
        }
    }
    bmx_repro::bmx::audit::assert_clean(&c);

    // Final verification: the database graph is intact everywhere it is
    // mapped, and every scratch list still walks.
    let verified = db::verify_db_structure(&c, hub, &graph).unwrap();
    assert_eq!(verified, 12);
    let mut final_sum = 0;
    for (i, (_b, list)) in scratch.iter().enumerate() {
        let head = c.gc.node(hub).directory.resolve(list.head);
        let payloads = lists::read_payloads(&c, hub, head).unwrap();
        assert_eq!(payloads.len(), 6, "scratch list {i} intact");
        final_sum += payloads.iter().sum::<u64>();
    }
    SoakOutcome {
        reclaimed: c.total_stat(StatKind::ObjectsReclaimed),
        copied: c.total_stat(StatKind::ObjectsCopied),
        messages: c.net.total_sent(),
        final_sum,
    }
}

#[test]
fn soak_mixed_workload_holds_invariants() {
    let out = run_soak(0xBEEF);
    assert!(out.reclaimed > 0, "churn garbage was collected");
    assert!(out.copied > 0, "collections copied live objects");
    assert!(out.messages > 0);
}

#[test]
fn soak_is_deterministic() {
    let a = run_soak(7);
    let b = run_soak(7);
    assert_eq!(a.reclaimed, b.reclaimed);
    assert_eq!(a.copied, b.copied);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.final_sum, b.final_sum);
    let c = run_soak(8);
    // A different seed takes a different path (statistically certain).
    assert!(
        a.messages != c.messages || a.copied != c.copied || a.reclaimed != c.reclaimed,
        "different seeds should diverge"
    );
}
