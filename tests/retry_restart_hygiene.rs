//! Restart hygiene of the report retry daemon, at cluster level.
//!
//! The unit tests in `bmx::retry` pin `hasten` and `forget_origin` in
//! isolation; these tests pin the *wiring* in `Cluster::note_fault_events`:
//! a `NodeRestarted` fault event pulls retry timers forward for reports
//! destined to the restarted node and resets their recovery-latency
//! baseline, and an amnesia crash drops the reports the crashed node itself
//! was tracking so the restarted instance inherits no pre-crash timers.

use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

const CRASH_START: u64 = 200;
const CRASH_END: u64 = 500;

fn policy() -> RetryPolicy {
    RetryPolicy {
        initial_interval: 4,
        backoff: 2,
        max_interval: 32,
        // Far more than the crash window can consume: a drained entry in
        // these tests can only mean delivery or an amnesia forget, never a
        // silent give-up.
        budget: 100,
    }
}

/// A report published into a crash outage is recovered promptly at restart,
/// and its measured recovery latency spans the *restart* to the ack — not
/// the pre-crash publication to the ack. The crash window is ~300 ticks
/// long, so a latency counter anywhere near it means the restart did not
/// reset the baseline.
#[test]
fn restart_resets_the_recovery_latency_baseline() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_fault(FaultPlan::none().crash(
            n(1),
            CRASH_START,
            CRASH_END,
        )),
        retry: Some(policy()),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1) = (n(0), n(1));
    let b0 = c.create_bunch(n0).unwrap();
    let b1 = c.create_bunch(n1).unwrap();
    let src = c.alloc(n0, b0, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n1, b1, &ObjSpec::data(1)).unwrap();
    c.add_root(n0, src);
    c.write_ref(n0, src, 0, tgt).unwrap();
    assert!(c.net.now() < CRASH_START, "setup ran into the crash window");

    // Publish the stub table into the outage: the destination is down, so
    // the daemon keeps re-sending into the void with growing backoff.
    c.step(CRASH_START + 10 - c.net.now()).unwrap();
    let publish_tick = c.net.now();
    c.run_bgc(n0, b0).unwrap();
    c.step(20).unwrap();
    assert_eq!(
        c.retries_pending(),
        1,
        "the report is tracked as undelivered"
    );

    // Run to just past the restart: the held/re-sent report lands, the ack
    // drains the entry within a handful of ticks — no residual backed-off
    // wait.
    c.step(CRASH_END + 20 - c.net.now()).unwrap();
    assert_eq!(
        c.retries_pending(),
        0,
        "the report drained promptly after the restart"
    );
    assert_eq!(c.stats[1].get(StatKind::NodeRestarts), 1);

    // The discriminator: latency is measured from the restart tick. The
    // publication-to-restart gap alone is ~10x the bound asserted here.
    let lat = c.stats[0].get(StatKind::RecoveryLatencyTicks);
    assert!(lat > 0, "a recovered report measures a nonzero latency");
    assert!(
        lat < 30,
        "recovery latency {lat} was measured from the pre-crash \
         publication at tick {publish_tick}, not from the restart at tick \
         {CRASH_END}"
    );

    // And the report actually applied: the scion protecting `tgt` exists.
    assert_eq!(
        c.gc.node(n1).bunch(b1).unwrap().scion_table.inter().len(),
        1
    );
    let s = c.run_bgc(n1, b1).unwrap();
    assert_eq!(s.reclaimed, 0, "the reported stub keeps the target alive");
}

/// An amnesia crash wipes the victim's own retry table: reports it was
/// re-sending before the crash are forgotten — not inherited by the
/// restarted instance, and not counted as budget exhaustion. The next
/// collection tracks a fresh report that supersedes anything forgotten.
#[test]
fn amnesia_restart_inherits_no_pre_crash_retry_timers() {
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_fault(FaultPlan::none().crash_amnesia(
            n(1),
            CRASH_START,
            CRASH_END,
        )),
        retry: Some(policy()),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1) = (n(0), n(1));
    let b0 = c.create_bunch(n0).unwrap();
    let b1 = c.create_bunch(n1).unwrap();
    let src = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0])).unwrap();
    let tgt = c.alloc(n0, b0, &ObjSpec::data(1)).unwrap();
    c.add_root(n1, src);
    c.write_ref(n1, src, 0, tgt).unwrap();
    assert!(c.net.now() < CRASH_START, "setup ran into the crash window");

    // The victim publishes a report that the network eats, so the entry is
    // pending — and re-sending — right up to the amnesia crash.
    c.net.set_drop(MsgClass::StubTable, 1.0);
    c.step(CRASH_START - 30 - c.net.now()).unwrap();
    c.run_bgc(n1, b1).unwrap();
    c.step(10).unwrap();
    assert_eq!(c.retries_pending(), 1, "the eaten report is tracked");

    // Through the crash and the rejoin. The wipe must drop the entry the
    // moment the crash fires; nothing re-tracks it afterwards.
    c.net.set_drop(MsgClass::StubTable, 0.0);
    c.step(CRASH_END + 50 - c.net.now()).unwrap();
    c.settle(2_000).unwrap();
    assert_eq!(
        c.retries_pending(),
        0,
        "the restarted node inherited a pre-crash retry entry"
    );
    assert_eq!(
        c.stats[1].get(StatKind::RetryBudgetExhausted),
        0,
        "the entry was forgotten by the wipe, not given up on"
    );
    assert_eq!(c.stats[1].get(StatKind::AmnesiaWipes), 1);
    assert_eq!(c.stats[1].get(StatKind::NodeRestarts), 1);
    assert!(!c.in_recovery(n1), "the rejoin handshake completed");
}
