//! Property-based whole-system tests: random mutation / ownership /
//! collection interleavings must never violate the collector's safety
//! (no live object reclaimed, payloads intact) and must eventually satisfy
//! liveness (unreachable objects reclaimed everywhere).

use std::collections::BTreeSet;

use bmx_repro::prelude::*;
use proptest::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Number of data objects in the random pool.
const POOL: usize = 16;
/// Pointer fields per object.
const FIELDS: u64 = 2;

/// A step of the random schedule.
#[derive(Clone, Debug)]
enum Op {
    /// `objs[src].field = objs[dst]` (or null), performed at node 0 under a
    /// write token.
    Link {
        src: usize,
        field: u64,
        dst: Option<usize>,
    },
    /// Registry slot `slot` points at `objs[dst]` (or null).
    Root { slot: u64, dst: Option<usize> },
    /// Node 1 takes ownership of `objs[i]`.
    Steal { i: usize },
    /// Run the BGC at a node.
    Collect { node: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..POOL, 0..FIELDS, proptest::option::of(0..POOL))
            .prop_map(|(src, field, dst)| Op::Link { src, field, dst }),
        (0..4u64, proptest::option::of(0..POOL)).prop_map(|(slot, dst)| Op::Root { slot, dst }),
        (0..POOL).prop_map(|i| Op::Steal { i }),
        (0..2u32).prop_map(|node| Op::Collect { node }),
    ]
}

/// Mirror of the mutator-visible graph.
struct Model {
    /// Field targets per object (by pool index).
    fields: Vec<[Option<usize>; FIELDS as usize]>,
    /// Registry slots (the root set).
    roots: [Option<usize>; 4],
}

impl Model {
    fn new() -> Model {
        Model {
            fields: vec![[None; FIELDS as usize]; POOL],
            roots: [None; 4],
        }
    }

    fn reachable(&self) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<usize> = self.roots.iter().flatten().copied().collect();
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            stack.extend(self.fields[i].iter().flatten().copied());
        }
        seen
    }
}

/// Is pool object `i` still nameable at `node`? A `false` is only legal for
/// model-unreachable objects (the collector must never take a live one).
fn alive(c: &Cluster, node: NodeId, model: &Model, objs: &[Addr], i: usize) -> bool {
    let present = c.oid_at_local(node, objs[i]).is_ok();
    if !present {
        assert!(
            !model.reachable().contains(&i),
            "object {i} reclaimed while model-reachable"
        );
    }
    present
}

fn run_schedule(ops: &[Op]) -> Result<()> {
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n0, n1) = (n(0), n(1));
    let b = c.create_bunch(n0)?;
    // The registry holds the root slots; the pool holds the data objects.
    let registry = c.alloc(n0, b, &ObjSpec::with_refs(4, &[0, 1, 2, 3]))?;
    c.add_root(n0, registry);
    let mut objs = Vec::with_capacity(POOL);
    for i in 0..POOL {
        let o = c.alloc(n0, b, &ObjSpec::with_refs(FIELDS + 1, &[0, 1]))?;
        c.write_data(n0, o, FIELDS, 1000 + i as u64)?;
        objs.push(o);
    }
    c.map_bunch(n1, b, n0)?;

    let mut model = Model::new();
    for op in ops {
        match *op {
            Op::Link { src, field, dst } => {
                // Mutate under the write token, as an entry-consistency
                // program would. A real program cannot name a reclaimed
                // object, so skip sources/targets that are already dead at
                // node 0 — asserting the model agrees they were garbage.
                if !alive(&c, n0, &model, &objs, src) {
                    continue;
                }
                if let Some(d) = dst {
                    if !alive(&c, n0, &model, &objs, d) {
                        continue;
                    }
                }
                let src_addr = objs[src];
                if c.acquire_write(n0, src_addr).is_err() {
                    continue;
                }
                let target = dst.map(|d| objs[d]).unwrap_or(Addr::NULL);
                let wrote = c.write_ref(n0, src_addr, field, target).is_ok();
                c.release(n0, src_addr)?;
                if wrote {
                    model.fields[src][field as usize] = dst;
                }
            }
            Op::Root { slot, dst } => {
                if let Some(d) = dst {
                    if !alive(&c, n0, &model, &objs, d) {
                        continue;
                    }
                }
                let target = dst.map(|d| objs[d]).unwrap_or(Addr::NULL);
                if c.write_ref(n0, registry, slot, target).is_ok() {
                    model.roots[slot as usize] = dst;
                }
            }
            Op::Steal { i } => {
                if alive(&c, n0, &model, &objs, i) && c.acquire_write(n1, objs[i]).is_ok() {
                    c.release(n1, objs[i])?;
                }
            }
            Op::Collect { node } => {
                c.run_bgc(n(node), b)?;
            }
        }
        // SAFETY INVARIANT after every step: every model-reachable object
        // is readable at node 0 with its payload intact.
        for &i in &model.reachable() {
            c.acquire_read(n0, objs[i])?;
            let v = c.read_data(n0, objs[i], FIELDS)?;
            c.release(n0, objs[i])?;
            assert_eq!(v, 1000 + i as u64, "payload of pool object {i}");
        }
        c.assert_gc_acquired_no_tokens();
    }

    // LIVENESS: dead cycles whose members are owned on different nodes are
    // kept alive by a cross-site loop of entering ownerPtrs — the garbage
    // class the paper's per-site collection admittedly cannot reach without
    // ownership movement (Section 7). Apply the paper's remedy first:
    // consolidate ownership of everything still present at node 0.
    for &o in &objs {
        if c.oid_at_local(n0, o).is_ok() && c.acquire_write(n0, o).is_ok() {
            c.release(n0, o)?;
        }
    }
    // Then, after enough collection rounds everywhere, every
    // model-unreachable pool object is reclaimed at node 0.
    for _ in 0..3 {
        c.run_bgc(n1, b)?;
        c.run_bgc(n0, b)?;
    }
    bmx_repro::bmx::audit::assert_clean(&c);
    let live = model.reachable();
    for (i, &o) in objs.iter().enumerate() {
        let present = c.oid_at_local(n0, o).is_ok();
        if live.contains(&i) {
            assert!(present, "live object {i} vanished at node 0");
        } else {
            assert!(!present, "garbage object {i} survived at node 0");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_schedules_preserve_safety_and_liveness(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_schedule(&ops).expect("schedule must execute cleanly");
    }
}

/// A collection with no intervening mutation is idempotent: the second run
/// reclaims nothing and copies nothing new at the same node.
#[test]
fn back_to_back_collections_are_idempotent() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    let root_obj = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0, 1])).unwrap();
    let kid = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    let _junk = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.write_ref(n0, root_obj, 0, kid).unwrap();
    c.add_root(n0, root_obj);
    let s1 = c.run_bgc(n0, b).unwrap();
    assert_eq!(s1.reclaimed, 1);
    assert_eq!(s1.copied, 2);
    let s2 = c.run_bgc(n0, b).unwrap();
    assert_eq!(s2.reclaimed, 0, "nothing left to reclaim");
    assert_eq!(s2.live, 2);
}

/// `ptr_eq` is an equivalence consistent with object identity across any
/// number of relocations.
#[test]
fn ptr_eq_stable_across_relocations() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let b = c.create_bunch(n0).unwrap();
    let a = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    let x = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
    c.add_root(n0, a);
    c.add_root(n0, x);
    let mut a_names = vec![a];
    let mut x_names = vec![x];
    for _ in 0..4 {
        c.run_bgc(n0, b).unwrap();
        a_names.push(c.gc.node(n0).directory.resolve(a));
        x_names.push(c.gc.node(n0).directory.resolve(x));
    }
    for &p in &a_names {
        for &q in &a_names {
            assert!(c.ptr_eq(n0, p, q), "all names of A are equal");
        }
        for &q in &x_names {
            assert!(!c.ptr_eq(n0, p, q), "A is never X");
        }
    }
}
