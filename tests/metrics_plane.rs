//! The metrics plane's integration contract (DESIGN.md §9).
//!
//! Three promises are pinned here, each against a *real* cluster rather
//! than the unit fixtures in `crates/metrics`:
//!
//! 1. **Observational purity** — a fixed-seed faulty run produces
//!    bit-identical counters, per-class network stats, and fault stats
//!    whether the metrics plane is installed or not. Instrumentation may
//!    read the simulation; it must never steer it.
//! 2. **Watchdog calibration** — the from-space leak detector stays silent
//!    on a healthy run that drains its from-space, and fires on the same
//!    cluster when the drain never happens.
//! 3. **Exposition fidelity** — the snapshot of a live run survives the
//!    JSON round-trip losslessly and renders to well-formed Prometheus
//!    text exposition.

use bmx_repro::metrics::{self, watchdog::WatchdogConfig, Ctr, Gge};
use bmx_repro::prelude::*;
use bmx_repro::trace::AlarmKind;
use bmx_repro::workloads::churn;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Everything a [`faulty_run`] computes that could conceivably be
/// perturbed: per-node counters, per-class (sent, dropped, duplicated)
/// network stats, and the round count.
type RunDigest = (Vec<Vec<u64>>, Vec<(u64, u64, u64)>, usize);

/// A short faulty churn run, fully determined by the seed: link loss,
/// duplication, jitter, a healing partition.
fn faulty_run(seed: u64) -> RunDigest {
    let plan = FaultPlan::none()
        .all_links(LinkFault {
            drop: 0.10,
            duplicate: 0.20,
            jitter: 2,
        })
        .partition(vec![n(0)], vec![n(1), n(2)], 300, 500);
    let mut net = NetworkConfig::lossless(1).with_fault(plan);
    net.seed = seed;
    let mut c = Cluster::new(ClusterConfig {
        nodes: 3,
        net,
        retry: Some(RetryPolicy::default()),
        ..Default::default()
    });

    let mut sites = Vec::new();
    for i in 0..3 {
        let node = n(i);
        let b = c.create_bunch(node).unwrap();
        let reg = c.alloc(node, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(node, reg);
        sites.push((node, b, reg));
    }
    let shared = c.create_bunch(n(0)).unwrap();
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n(0), shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n(0), o);
            o
        })
        .collect();
    c.map_bunch(n(1), shared, n(0)).unwrap();
    c.map_bunch(n(2), shared, n(0)).unwrap();

    let mut rounds = 0;
    while c.net.now() < 800 {
        churn::chaos_round(&mut c, &sites, &migrate, rounds, seed).unwrap();
        c.run_bgc([n(0), n(1), n(2)][rounds % 3], shared).unwrap();
        rounds += 1;
    }
    c.settle(3_000).unwrap();

    let counters = (0..3)
        .map(|i| StatKind::ALL.iter().map(|&k| c.stats[i].get(k)).collect())
        .collect();
    let per_class = MsgClass::ALL
        .iter()
        .map(|&cl| {
            let s = c.net.class_stats(cl);
            (s.sent, s.dropped, s.duplicated)
        })
        .collect();
    (counters, per_class, rounds)
}

/// Promise 1: installing the metrics plane does not perturb the simulation.
/// Same seed, metered and unmetered, bit-identical outcomes.
#[test]
fn metered_run_is_bit_identical_to_unmetered() {
    metrics::disable();
    let bare = faulty_run(0x5EED_CAFE);

    let reg = metrics::install();
    let metered = faulty_run(0x5EED_CAFE);
    assert_eq!(
        bare, metered,
        "metrics instrumentation perturbed a fixed-seed run"
    );
    // ... and the metered run actually measured something.
    assert!(
        (0..3)
            .map(|i| reg.node(i).ctr(Ctr::BgcCollections))
            .sum::<u64>()
            > 0,
        "the metered run recorded no collections"
    );
    metrics::disable();
}

/// Promise 2a: a healthy run — collections happen, from-space drains via
/// reuse — never trips the leak watchdog.
#[test]
fn fromspace_watchdog_is_silent_when_the_drain_runs() {
    let reg = metrics::install_with(WatchdogConfig {
        fromspace_window: 200,
        ..WatchdogConfig::default()
    });
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let b = c.create_bunch(n(0)).unwrap();
    let root = c.alloc(n(0), b, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n(0), root);

    for _ in 0..6 {
        // Garbage + a collection retires a segment into from-space...
        let junk = c.alloc(n(0), b, &ObjSpec::data(4)).unwrap();
        c.write_ref(n(0), root, 0, junk).unwrap();
        c.write_data(n(0), junk, 0, 7).unwrap();
        c.run_bgc(n(0), b).unwrap();
        // ... and the reuse path drains it before the window closes.
        c.step(120).unwrap();
        c.reuse_from_space(n(0), b).unwrap();
        c.step(120).unwrap();
    }
    assert_eq!(
        reg.alarms(AlarmKind::FromSpaceLeak),
        0,
        "leak watchdog fired on a draining run"
    );
    metrics::disable();
}

/// Promise 2b: the same cluster with the drain withheld — from-space
/// retention stays nonzero for a whole window — fires exactly the
/// from-space alarm, and latches rather than re-firing every check.
#[test]
fn fromspace_watchdog_fires_when_the_drain_is_withheld() {
    let reg = metrics::install_with(WatchdogConfig {
        fromspace_window: 200,
        ..WatchdogConfig::default()
    });
    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let b = c.create_bunch(n(0)).unwrap();
    let root = c.alloc(n(0), b, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n(0), root);

    let junk = c.alloc(n(0), b, &ObjSpec::data(4)).unwrap();
    c.write_ref(n(0), root, 0, junk).unwrap();
    c.run_bgc(n(0), b).unwrap();
    assert!(
        reg.node(0).gauge(Gge::FromSpaceRetainedWords) > 0,
        "collection should have retired a segment into from-space"
    );

    // Never drain; drive background time well past the detection window.
    c.step(600).unwrap();
    assert_eq!(
        reg.alarms(AlarmKind::FromSpaceLeak),
        1,
        "leak watchdog latched one alarm for the stuck from-space"
    );
    assert_eq!(reg.alarms(AlarmKind::RetryStorm), 0);
    assert_eq!(reg.alarms(AlarmKind::ScionBacklog), 0);
    metrics::disable();
}

/// Promise 3: snapshot → JSON → snapshot is lossless on a real run, the
/// diff against a baseline only reports what moved, and the Prometheus
/// rendering is well-formed.
#[test]
fn exposition_round_trips_on_a_live_run() {
    let reg = metrics::install();
    let baseline = metrics::snapshot();
    faulty_run(0xD05E_D05E);

    let snap = metrics::snapshot();
    let json = metrics::json::to_json(&snap);
    let back = metrics::json::from_json(&json).expect("parse own output");
    assert_eq!(snap, back, "JSON round-trip lost entries");

    let delta = snap.diff(&baseline);
    assert!(
        delta
            .iter()
            .any(|(k, &v)| k.ends_with("/bgc_collections") && v > 0),
        "diff should show the run's collections"
    );
    assert!(
        delta.keys().all(|k| snap.get(k) != baseline.get(k)),
        "diff must only contain changed entries"
    );

    let prom = metrics::prometheus::render(&reg);
    assert!(prom.contains("# TYPE bmx_bgc_collections_total counter"));
    assert!(prom.contains("# TYPE bmx_bgc_pause_micros histogram"));
    assert!(prom.contains("bmx_link_send_total{src=\"0\",dst=\"1\"}"));
    assert!(prom.contains("le=\"+Inf\""));
    // Every exposition line is either a comment or `name{labels} value`.
    for line in prom.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() == 2,
            "malformed exposition line: {line}"
        );
    }
    metrics::disable();
}
