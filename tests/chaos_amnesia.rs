//! Amnesia chaos soak: a node loses *everything volatile* mid-workload and
//! must come back through the RVM store and the epoch-based rejoin
//! handshake.
//!
//! This extends `tests/chaos.rs` with the harsher crash model: where a
//! buffered crash holds reliable traffic for replay after restart, an
//! amnesia crash drops it — the node restarts with only its last post-BGC
//! checkpoint and must (1) replay the RVM store, (2) reconcile DSM
//! ownership with the surviving peers, and (3) regenerate its scion/stub
//! state from fresh idempotent reachability reports. The acceptance gate is
//! the same as the chaos suite's — no premature reclamation, zero collector
//! token acquires — plus the recovery-specific temporal invariant: no scion
//! sourced at the crashed node is ever retired under a pre-crash epoch
//! (`trace::query::post_crash_epoch_violations`).
//!
//! A failing seed writes a replay artifact to `target/chaos/`: the fault
//! plan, the per-node flight-recorder tails, and a directory listing of the
//! recovered node's RVM store (so the checkpoint actually on disk at the
//! failure can be inspected).

use bmx::audit;
use bmx_repro::metrics;
use bmx_repro::prelude::*;
use bmx_repro::trace;
use bmx_repro::workloads::{churn, lists};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

const FLIGHT_RECORDER_CAP: usize = 8_192;

/// Fault windows (ticks). The partition heals well before the amnesia
/// crash so the two recovery mechanisms are exercised separately.
const PARTITION_START: u64 = 900;
const PARTITION_END: u64 = 1200;
const CRASH_START: u64 = 1600;
const CRASH_END: u64 = 1800;
const RUN_UNTIL: u64 = 2600;

/// The node that loses its memory.
const VICTIM: u32 = 2;

fn amnesia_plan() -> FaultPlan {
    FaultPlan::none()
        .all_links(LinkFault {
            drop: 0.10,
            duplicate: 0.20,
            jitter: 3,
        })
        .partition(vec![n(0)], vec![n(1), n(2)], PARTITION_START, PARTITION_END)
        .crash_amnesia(n(VICTIM), CRASH_START, CRASH_END)
}

fn persist_dir(seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bmx-amnesia-{seed:#x}-{}", std::process::id()))
}

/// A node can take mutator/collector work only when it is up and done
/// rejoining.
fn available(c: &Cluster, node: NodeId) -> bool {
    !c.net.is_down(node) && !c.in_recovery(node)
}

/// One workload round that keeps churning *around* the outage: registry
/// churn at every available site, one tolerant ownership-migration hop,
/// a collection at the round-robin-chosen available site (the shared bunch
/// is collected wherever the rotation lands — replica sites included), and
/// a slice of background clock.
fn amnesia_round(
    c: &mut Cluster,
    sites: &[(NodeId, BunchId, Addr)],
    shared: BunchId,
    migrate: &[Addr],
    round: usize,
) -> Result<()> {
    for &(node, bunch, registry) in sites {
        if available(c, node) {
            churn::register_churn(c, node, bunch, registry, 2)?;
        }
    }
    // One migration hop per object, to a deterministically rotating target.
    // Acquires may WouldBlock while reliable traffic is being dropped on the
    // crashed node's behalf; the hop is simply skipped (the next round
    // re-sends the request, which is the protocol's own loss recovery).
    let up: Vec<NodeId> = (0..c.nodes())
        .map(NodeId)
        .filter(|&p| available(c, p))
        .collect();
    if !up.is_empty() {
        for (i, &obj) in migrate.iter().enumerate() {
            let site = up[(round + i) % up.len()];
            match c.acquire_write(site, obj) {
                Ok(()) => {
                    let v = c.read_data(site, obj, 1)?;
                    c.write_data(site, obj, 1, v + 1)?;
                    c.release(site, obj)?;
                }
                Err(BmxError::WouldBlock { .. }) | Err(BmxError::OwnerUnknown { .. }) => {}
                Err(e) => return Err(e),
            }
        }
    }
    // Collections rotate over home bunches and the shared bunch at every
    // site — no root-holder restriction.
    let mut targets: Vec<(NodeId, BunchId)> = sites
        .iter()
        .map(|&(node, bunch, _)| (node, bunch))
        .collect();
    for &(node, _, _) in sites {
        targets.push((node, shared));
    }
    let (node, bunch) = targets[round % targets.len()];
    if available(c, node) && c.gc.node(node).bunches.contains_key(&bunch) {
        c.run_bgc(node, bunch)?;
    }
    c.step(20)
}

/// Everything a run produces that must replay identically from the seed.
#[derive(Debug, PartialEq)]
struct AmnesiaSummary {
    counters: Vec<Vec<u64>>,
    fault: FaultStats,
    rounds: usize,
    recoveries: usize,
}

fn run_amnesia(seed: u64) -> AmnesiaSummary {
    trace::install_ring(FLIGHT_RECORDER_CAP);
    // Same policy as tests/chaos.rs: watchdogs must stay silent on a green
    // amnesia soak, and each seed leaves a metrics snapshot artifact.
    let mreg = metrics::install();
    let dir = persist_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);
    let mut net = NetworkConfig::lossless(1).with_fault(amnesia_plan());
    net.seed = seed;
    let cfg = ClusterConfig {
        nodes: 3,
        net,
        retry: Some(RetryPolicy {
            initial_interval: 4,
            backoff: 2,
            max_interval: 32,
            budget: 6,
        }),
        persist: Some(PersistConfig {
            dir: dir.clone(),
            // Small bound so log truncation actually fires mid-run.
            truncate_log_bytes: Some(1 << 18),
        }),
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));

    // Same topology as the chaos suite: a rooted churn registry per node
    // plus a shared bunch mapped everywhere with the long-lived structures.
    let mut sites = Vec::new();
    for &node in &[n0, n1, n2] {
        let b = c.create_bunch(node).unwrap();
        let reg = c.alloc(node, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(node, reg);
        sites.push((node, b, reg));
    }
    let shared = c.create_bunch(n0).unwrap();
    let list = lists::build_list(&mut c, n0, shared, 6, 0).unwrap();
    c.add_root(n0, list.head);
    let anchor = c.alloc(n0, shared, &ObjSpec::data(1)).unwrap();
    c.write_data(n0, anchor, 0, 4242).unwrap();
    let bridge = c.alloc(n0, shared, &ObjSpec::with_refs(1, &[0])).unwrap();
    c.add_root(n0, bridge);
    c.write_ref(n0, bridge, 0, anchor).unwrap();
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(n0, shared, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).unwrap();
    c.map_bunch(n2, shared, n0).unwrap();
    let expected_live: Vec<(NodeId, Addr)> = sites
        .iter()
        .map(|&(node, _, reg)| (node, reg))
        .chain([(n0, list.head), (n0, anchor), (n0, bridge)])
        .chain(migrate.iter().map(|&o| (n0, o)))
        .collect();
    assert!(c.net.now() < PARTITION_START, "setup ran into the faults");

    let mut rounds = 0;
    while c.net.now() < RUN_UNTIL {
        amnesia_round(&mut c, &sites, shared, &migrate, rounds).unwrap();
        rounds += 1;
    }
    c.settle(5_000).unwrap();
    assert_eq!(c.retries_pending(), 0, "every report delivered or given up");

    // The recovery actually ran, against a real checkpoint.
    let recs: Vec<_> = c
        .recovery_log
        .iter()
        .filter(|r| r.node == n(VICTIM))
        .collect();
    assert_eq!(
        recs.len(),
        1,
        "exactly one recovery at the victim: {recs:?}"
    );
    let rec = recs[0];
    assert!(
        rec.objects_recovered > 0,
        "the RVM replay reinstalled the checkpointed objects"
    );
    assert!(
        rec.reports_applied > 0,
        "scion regeneration consumed peer reports"
    );
    assert!(
        rec.complete_tick >= rec.restart_tick,
        "recovery latency is well-formed"
    );
    assert!(!c.in_recovery(n(VICTIM)), "the rejoin handshake completed");

    // The paper's safety gate, under the harshest crash model.
    audit::assert_no_premature_reclamation(&c, &expected_live);
    c.assert_gc_acquired_no_tokens();
    assert_eq!(lists::read_payloads(&c, n0, list.head).unwrap().len(), 6);
    assert_eq!(c.read_data(n0, anchor, 0).unwrap(), 4242);

    // The victim is a working cluster member again: it can take a write
    // token and its own collector runs.
    c.acquire_write(n2, anchor).unwrap();
    c.write_data(n2, anchor, 0, 4243).unwrap();
    c.release(n2, anchor).unwrap();
    c.acquire_read(n0, anchor).unwrap();
    assert_eq!(c.read_data(n0, anchor, 0).unwrap(), 4243);
    c.release(n0, anchor).unwrap();

    // Recovery-plane counters engaged.
    let victim = &c.stats[VICTIM as usize];
    assert_eq!(victim.get(StatKind::AmnesiaWipes), 1);
    assert_eq!(victim.get(StatKind::RecoveriesCompleted), 1);
    assert_eq!(victim.get(StatKind::NodeRestarts), 1);

    // The full temporal-invariant set, including the post-crash epoch rule.
    let records = trace::take();
    trace::disable();
    let scion = trace::query::scion_retirement_violations(&records);
    assert!(scion.is_empty(), "scion retirement violations: {scion:?}");
    let addr = trace::query::address_update_violations(&records);
    assert!(addr.is_empty(), "address update violations: {addr:?}");
    let acq = trace::query::acquire_invariant_violations(&records);
    assert!(acq.is_empty(), "acquire invariant violations: {acq:?}");
    let post = trace::query::post_crash_epoch_violations(&records);
    assert!(post.is_empty(), "post-crash epoch violations: {post:?}");
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, trace::TraceEvent::RecoveryComplete { .. })),
        "the recovery plane actually traced"
    );

    assert_eq!(
        mreg.total_alarms(),
        0,
        "watchdog alarm fired during an otherwise-green amnesia run \
         (snapshot in target/chaos/metrics-amnesia-seed-{seed:#x}.json)"
    );
    {
        let out = std::path::Path::new("target/chaos");
        let _ = std::fs::create_dir_all(out);
        let snap = metrics::snapshot();
        let _ = std::fs::write(
            out.join(format!("metrics-amnesia-seed-{seed:#x}.json")),
            metrics::json::to_json(&snap),
        );
    }
    metrics::disable();

    let summary = AmnesiaSummary {
        counters: (0..3)
            .map(|i| StatKind::ALL.iter().map(|&k| c.stats[i].get(k)).collect())
            .collect(),
        fault: c.net.fault_stats(),
        rounds,
        recoveries: c.recovery_log.len(),
    };
    let _ = std::fs::remove_dir_all(&dir);
    summary
}

/// Failure artifacts: flight-recorder tails per node plus the recovered
/// node's RVM directory listing, next to the replay seed.
fn dump_artifacts(seed: u64) -> Vec<String> {
    let records = trace::take();
    trace::disable();
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    let mut written = Vec::new();
    for node in [n(0), n(1), n(2)] {
        let lines: Vec<String> = trace::query::node_order(&records, node)
            .iter()
            .map(|r| r.to_string())
            .collect();
        let path = dir.join(format!(
            "amnesia-failing-seed-{seed:#x}-node{}.trace.txt",
            node.0
        ));
        if std::fs::write(&path, lines.join("\n") + "\n").is_ok() {
            written.push(path.to_string_lossy().into_owned());
        }
    }
    // The victim's RVM store: what was actually on disk at the failure.
    let store = persist_dir(seed).join(format!("node{VICTIM}"));
    let mut listing = String::new();
    if let Ok(entries) = std::fs::read_dir(&store) {
        for e in entries.flatten() {
            let len = e.metadata().map(|m| m.len()).unwrap_or(0);
            listing.push_str(&format!(
                "{}\t{} bytes\n",
                e.file_name().to_string_lossy(),
                len
            ));
        }
    } else {
        listing.push_str("(no RVM store on disk)\n");
    }
    let rvm_path = dir.join(format!("amnesia-failing-seed-{seed:#x}-rvm-dir.txt"));
    if std::fs::write(&rvm_path, format!("{}\n{listing}", store.display())).is_ok() {
        written.push(rvm_path.to_string_lossy().into_owned());
    }
    written
}

/// The headline run: the victim loses everything, recovers from its RVM
/// checkpoint, rejoins under a fresh epoch, and the cluster stays safe.
#[test]
fn amnesia_crash_recovers_through_rvm_and_rejoin() {
    run_amnesia(0xA3_5EED);
}

/// Bit-exact replay of the simulated portion: one seed, two runs,
/// identical counters (RVM replay wall-time is measured, not simulated,
/// and recovery latency in ticks is part of the counters compared).
#[test]
fn amnesia_runs_replay_identically_from_the_seed() {
    let a = run_amnesia(0x0D15_EA5E);
    let b = run_amnesia(0x0D15_EA5E);
    assert_eq!(a, b, "same seed must reproduce identical counters");
}

/// Seed sweep for the nightly chaos job: `AMNESIA_SEEDS` (comma-separated,
/// `0x`-prefixed hex or decimal) overrides the default 8-seed set. A
/// failing seed writes the replay artifact, the per-node flight recorders,
/// and the victim's RVM directory listing to `target/chaos/`.
#[test]
fn amnesia_seed_sweep() {
    let seeds: Vec<u64> = match std::env::var("AMNESIA_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                let t = t.trim();
                match t.strip_prefix("0x") {
                    Some(h) => u64::from_str_radix(h, 16).expect("hex seed"),
                    None => t.parse().expect("decimal seed"),
                }
            })
            .collect(),
        Err(_) => (1..=8).collect(),
    };
    let mut failures = Vec::new();
    for seed in seeds {
        let outcome = std::panic::catch_unwind(|| run_amnesia(seed));
        if let Err(panic) = outcome {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            let dumps = dump_artifacts(seed);
            let dir = std::path::Path::new("target/chaos");
            let _ = std::fs::create_dir_all(dir);
            let artifact = dir.join(format!("amnesia-failing-seed-{seed:#x}.txt"));
            let _ = std::fs::write(
                &artifact,
                format!(
                    "amnesia seed: {seed:#x}\nreplay: AMNESIA_SEEDS={seed:#x} cargo test \
                     --test chaos_amnesia amnesia_seed_sweep\nfault plan: {:#?}\npanic: {msg}\n\
                     artifacts: {}\n",
                    amnesia_plan(),
                    dumps.join(", "),
                ),
            );
            failures.push((seed, msg));
        }
        // A passing run removed its store; a failing one leaves it for the
        // artifact dump above, then it is cleared for the next seed.
        let _ = std::fs::remove_dir_all(persist_dir(seed));
    }
    assert!(
        failures.is_empty(),
        "amnesia seeds failed (replay artifacts in target/chaos/): {failures:?}"
    );
}
