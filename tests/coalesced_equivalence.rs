//! Equivalence of the coalesced DSM envelope fanout against the unbatched
//! reference wire format.
//!
//! The engine batches every protocol message bound for one destination in
//! one protocol round into a single envelope (`DsmPacket::msgs`). Batching
//! is a wire-level optimisation only: with `ClusterConfig::coalesce_dsm`
//! off, the engine reverts to one envelope per message. These tests drive
//! the same seeded contended workload both ways — under latency jitter,
//! and under duplication plus GC-lane loss — and require the protocol
//! outcomes to be indistinguishable.

use bmx::audit;
use bmx_common::SplitMix64;
use bmx_repro::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Per-node replica view, normalized for comparison: `(oid, token,
/// is_owner)` for every replica record, in oid order.
type ReplicaView = Vec<Vec<(u64, Token, bool)>>;

struct Outcome {
    replicas: ReplicaView,
    /// Final payload of each shared object, read at its owner.
    payloads: Vec<u64>,
    /// Sum of per-node envelope counts (`DsmProtocolMessages`).
    envelopes: u64,
    /// Sum of per-node constituent message counts (`DsmLogicalMessages`).
    logical: u64,
}

/// Drives `rounds` of seeded contended writes: several nodes race for the
/// write token of the same objects, so releases serve queued requests —
/// exactly the rounds envelope coalescing compresses. Returns the final
/// protocol state.
fn run(seed: u64, coalesce: bool, plan: FaultPlan) -> Outcome {
    let mut net = NetworkConfig::lossless(1).with_fault(plan);
    net.seed = seed;
    let cfg = ClusterConfig {
        nodes: 3,
        net,
        coalesce_dsm: coalesce,
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1, n2) = (n(0), n(1), n(2));
    let b = c.create_bunch(n0).unwrap();
    let objs: Vec<Addr> = (0..5)
        .map(|_| {
            let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, b, n0).unwrap();
    c.map_bunch(n2, b, n0).unwrap();

    let mut rng = SplitMix64::new(seed);
    let mut stamp = 0u64;
    for round in 0..30 {
        let o = objs[(rng.next_u64() % objs.len() as u64) as usize];
        let holder = n((rng.next_u64() % 3) as u32);
        // The holder enters a write critical section; the other two nodes
        // race for the same token and queue behind the lock.
        if c.acquire_write(holder, o).is_ok() {
            stamp += 1;
            c.write_data(holder, o, 1, stamp).unwrap();
            let first = n((holder.0 + 1) % 3);
            let second = n((holder.0 + 2) % 3);
            // Both contenders block: their requests are parked at the
            // locked owner until the release below serves them.
            let _ = c.acquire_write(first, o);
            let _ = c.acquire_write(second, o);
            c.release(holder, o).unwrap();
        }
        // Contenders that meanwhile received the token just release it so
        // the next round starts unlocked.
        for node in [n0, n1, n2] {
            if c.token_at(node, o).unwrap_or(Token::None) == Token::Write
                && c.acquire_write(node, o).is_ok()
            {
                stamp += 1;
                c.write_data(node, o, 1, stamp).unwrap();
                c.release(node, o).unwrap();
            }
        }
        // Mix collections in so relocations piggy-back on the envelopes.
        if round % 10 == 9 {
            c.run_bgc([n0, n1, n2][round % 3], b).unwrap();
        }
    }
    c.settle(5_000).unwrap();

    let expected_live: Vec<(NodeId, Addr)> = objs.iter().map(|&o| (n0, o)).collect();
    audit::assert_no_premature_reclamation(&c, &expected_live);

    let replicas: ReplicaView = (0..3)
        .map(|i| {
            c.engine
                .replicas(n(i))
                .into_iter()
                .map(|(oid, st)| (oid.0, st.token, st.is_owner))
                .collect()
        })
        .collect();
    let payloads: Vec<u64> = objs
        .iter()
        .map(|&o| {
            let owner = (0..3)
                .map(n)
                .find(|&node| {
                    c.oid_at_local(node, o)
                        .is_ok_and(|oid| c.engine.is_owner(node, oid))
                })
                .expect("every object has exactly one owner");
            c.read_data(owner, o, 1).unwrap()
        })
        .collect();
    let sum = |k: StatKind| (0..3).map(|i| c.stats[i].get(k)).sum();
    Outcome {
        replicas,
        payloads,
        envelopes: sum(StatKind::DsmProtocolMessages),
        logical: sum(StatKind::DsmLogicalMessages),
    }
}

/// Jitter-only chaos: delivery timing wobbles but nothing is duplicated or
/// lost, so batched and unbatched runs must agree on *everything* — token
/// placement, ownership, payloads — while the batched run uses strictly
/// fewer envelopes for the same logical messages.
#[test]
fn batched_equals_unbatched_under_jitter() {
    let plan = || {
        FaultPlan::none().all_links(LinkFault {
            drop: 0.0,
            duplicate: 0.0,
            jitter: 3,
        })
    };
    for seed in [0x0C0A_1E5C_E001u64, 0xB47C_43D5_EED5, 0x5EED_0F02_71CE] {
        let on = run(seed, true, plan());
        let off = run(seed, false, plan());
        assert_eq!(
            on.replicas, off.replicas,
            "token/ownership state (seed {seed:#x})"
        );
        assert_eq!(on.payloads, off.payloads, "payloads (seed {seed:#x})");
        assert_eq!(
            on.logical, off.logical,
            "same protocol actions either way (seed {seed:#x})"
        );
        assert_eq!(
            off.logical, off.envelopes,
            "unbatched reference: one envelope per message (seed {seed:#x})"
        );
        assert!(
            on.envelopes < off.envelopes,
            "coalescing saved envelopes (seed {seed:#x}): {} vs {}",
            on.envelopes,
            off.envelopes
        );
    }
}

/// Duplication and GC-lane loss make the wire schedules of the two runs
/// diverge (different envelope counts consume the fault RNG differently),
/// so token *placement* may legitimately differ; the writes applied and
/// the surviving heap must not. Payload comparison pins that down: both
/// runs admit the same scripted write sequence.
#[test]
fn batched_equals_unbatched_under_duplication_and_loss() {
    let plan = || {
        FaultPlan::none().all_links(LinkFault {
            drop: 0.10,
            duplicate: 0.20,
            jitter: 2,
        })
    };
    for seed in [0xD0_0D1E_5EEDu64, 0xFA11_BACC_5EED] {
        let on = run(seed, true, plan());
        let off = run(seed, false, plan());
        assert_eq!(on.payloads, off.payloads, "payloads (seed {seed:#x})");
        assert!(on.envelopes <= on.logical, "seed {seed:#x}");
        assert_eq!(off.logical, off.envelopes, "seed {seed:#x}");
    }
}
