//! Grouping heuristics for the group collector (Section 7 and its stated
//! future work): locality, size-bounded locality, and SSP-closure.

use bmx_repro::gc::Heuristic;
use bmx_repro::prelude::*;
use bmx_repro::workloads::cycles;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// SSP-closure groups each ring into its own component; collecting the
/// components one by one reclaims every ring without ever collecting the
/// whole heap at once.
#[test]
fn ssp_closure_collects_each_ring_separately() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    // Three disjoint dead rings plus one live rooted ring.
    let _r1 = cycles::build_inter_bunch_ring(&mut c, n0, 3).unwrap();
    let _r2 = cycles::build_inter_bunch_ring(&mut c, n0, 4).unwrap();
    let (_, live_objs) = cycles::build_inter_bunch_ring(&mut c, n0, 5).unwrap();
    c.add_root(n0, live_objs[0]);

    let groups = bmx_repro::gc::grouping::groups(&c.gc, n0, Heuristic::SspClosure);
    assert_eq!(groups.len(), 3, "one component per ring: {groups:?}");
    assert!(bmx_repro::gc::grouping::is_partition(&c.gc, n0, &groups));

    let stats = c.run_ggc_with(n0, Heuristic::SspClosure).unwrap();
    assert_eq!(stats.reclaimed, 3 + 4, "both dead rings reclaimed");
    assert_eq!(stats.live, 5, "the rooted ring survives");
}

/// Size-bounded grouping bounds the per-collection cost but can split a
/// cycle, leaving it uncollected — the cost/completeness trade-off the
/// paper describes.
#[test]
fn size_bounded_grouping_can_split_cycles() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let (_bunches, objs) = cycles::build_inter_bunch_ring(&mut c, n0, 6).unwrap();
    // Cap groups at 3 bunches: the 6-bunch ring is split and survives.
    let stats = c.run_ggc_with(n0, Heuristic::SizeBounded(3)).unwrap();
    assert_eq!(stats.reclaimed, 0, "a split cycle survives");
    // The full-locality heuristic reclaims it.
    let stats = c.run_ggc_with(n0, Heuristic::Locality).unwrap();
    assert_eq!(stats.reclaimed, objs.len() as u64);
}

/// Locality groups everything mapped; its single group equals `run_ggc`.
#[test]
fn locality_heuristic_equals_plain_ggc() {
    let build = || {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let (_, objs) = cycles::build_inter_bunch_ring(&mut c, n(0), 4).unwrap();
        (c, objs)
    };
    let (mut c1, _) = build();
    let s1 = c1.run_ggc(n(0)).unwrap();
    let (mut c2, _) = build();
    let s2 = c2.run_ggc_with(n(0), Heuristic::Locality).unwrap();
    assert_eq!(s1.reclaimed, s2.reclaimed);
    assert_eq!(s1.live, s2.live);
}

/// The SSP-closure groups react to new references: linking two previously
/// separate components merges their groups.
#[test]
fn ssp_closure_tracks_new_references() {
    let mut c = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = n(0);
    let (_b1, o1) = cycles::build_inter_bunch_ring(&mut c, n0, 2).unwrap();
    let (_b2, o2) = cycles::build_inter_bunch_ring(&mut c, n0, 2).unwrap();
    let before = bmx_repro::gc::grouping::groups(&c.gc, n0, Heuristic::SspClosure);
    assert_eq!(before.len(), 2);
    // Bridge the rings (field 1 is a second pointer slot).
    c.write_ref(n0, o1[0], 1, o2[0]).unwrap();
    let after = bmx_repro::gc::grouping::groups(&c.gc, n0, Heuristic::SspClosure);
    assert_eq!(after.len(), 1, "bridged components merge");
}
