//! Quiesce and shutdown semantics of the parallel runtime: whatever is
//! in flight when shutdown begins has a *deterministic per-mode fate* —
//! [`Shutdown::Drain`] applies every envelope, [`Shutdown::Drop`] applies
//! the reliability-requiring DSM class and discards loss-tolerant
//! collector traffic whole. In neither mode is an envelope ever
//! half-applied: application happens atomically under the protocol lock,
//! and the transport accounting must conserve (`delivered + dropped ==
//! sent`) on every seed.
//!
//! The property is checked over many seeds with traffic deliberately left
//! in flight at the shutdown call (a collection is kicked off and *not*
//! quiesced), so the drivers race the phase flip — every interleaving
//! must land in one of the two legal fates and leave the cluster
//! audit-clean.

use std::sync::Arc;
use std::time::Duration;

use bmx_common::SplitMix64;
use bmx_repro::bmx::audit;
use bmx_repro::prelude::*;
use parking_lot::Mutex;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

const NODES: u32 = 3;

struct Outcome {
    cluster: Cluster,
    report: ShutdownReport,
    live: Vec<(NodeId, Addr)>,
    incs_applied: u64,
}

/// Seeded burst of cross-node increments, then a *guaranteed* in-flight
/// backlog at the phase flip: a thread runs several collections inside
/// one protocol-lock hold (their report/scion envelopes are exported to
/// the transport immediately) and keeps holding the lock while the main
/// thread calls shutdown. The drivers can pop at most one envelope each
/// before blocking on the lock, so the backlog is still pending when the
/// phase flips — every seed genuinely exercises the per-mode fate.
fn run(seed: u64, mode: Shutdown) -> Outcome {
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(NODES));
    let h0 = pc.handle(n(0));
    let bunch = h0.create_bunch().expect("bunch");
    let obj = h0
        .alloc(bunch, &ObjSpec::with_refs(2, &[0]))
        .expect("alloc");
    h0.add_root(obj).expect("root");
    let mut live = vec![(n(0), obj)];
    for i in 1..NODES {
        let h = pc.handle(n(i));
        h.map_bunch(bunch, n(0)).expect("map");
        h.add_root(obj).expect("root");
        live.push((n(i), obj));
    }
    assert!(pc.quiesce(Duration::from_secs(10)), "setup quiesce");

    let applied = Arc::new(Mutex::new(0u64));
    let mut threads = Vec::new();
    for i in 0..NODES {
        let h = pc.handle(n(i));
        let applied = Arc::clone(&applied);
        let mut rng = SplitMix64::new(seed ^ (u64::from(i) + 1));
        threads.push(std::thread::spawn(move || {
            let burst = 4 + rng.next_u64() % 8;
            for _ in 0..burst {
                let inc = || -> Result<()> {
                    h.acquire_write(obj)?;
                    let v = h.read_data(obj, 1)?;
                    h.write_data(obj, 1, v + 1)?;
                    h.release(obj)?;
                    Ok(())
                };
                inc().expect("increment");
                *applied.lock() += 1;
            }
            // Kick off collector traffic (reports to both peers) and
            // return without waiting for it to be applied.
            h.run_bgc(bunch).expect("bgc");
        }));
    }
    for t in threads {
        t.join().expect("mutator");
    }
    // Build the in-flight backlog and straddle the flip: the closure
    // exports collection traffic to the transport, then sleeps *while
    // still holding the protocol lock*.
    let straddle = {
        let h = pc.handle(n(0));
        std::thread::spawn(move || {
            h.with(|c| {
                for _ in 0..4 {
                    c.run_bgc(n(0), bunch)?;
                }
                std::thread::sleep(Duration::from_millis(40));
                Ok(())
            })
            .expect("straddle collections");
        })
    };
    // NO quiesce: flip the phase while the backlog is pending and the
    // lock is still held.
    std::thread::sleep(Duration::from_millis(10));
    let (cluster, report) = pc.shutdown(mode).expect("shutdown");
    straddle.join().expect("straddle thread");
    let incs_applied = *applied.lock();
    Outcome {
        cluster,
        report,
        live,
        incs_applied,
    }
}

/// Drain: everything sent is applied — nothing dropped, accounting
/// conserves exactly, and the final state passes the full audit set.
#[test]
fn drain_applies_everything_in_flight() {
    for seed in [
        0xD7A1_0001u64,
        0xD7A1_0002,
        0xD7A1_0003,
        0xD7A1_0004,
        0xD7A1_0005,
        0xD7A1_0006,
        0xD7A1_0007,
        0xD7A1_0008,
    ] {
        let mut o = run(seed, Shutdown::Drain);
        assert!(o.report.sent > 0, "seed {seed:#x}: vacuous run");
        assert_eq!(
            o.report.dropped, 0,
            "seed {seed:#x}: drain dropped: {:?}",
            o.report
        );
        assert_eq!(
            o.report.delivered, o.report.sent,
            "seed {seed:#x}: conservation: {:?}",
            o.report
        );
        verify_final_state(&mut o, seed);
    }
}

/// Drop: the DSM class is still applied (the design requires it
/// reliable); loss-tolerant collector classes may be discarded, but only
/// *whole* — accounting conserves, no envelope is half-applied, and the
/// cluster is still audit-clean because the collector tolerates exactly
/// this loss (the paper's loss model).
#[test]
fn drop_discards_only_loss_tolerant_classes_whole() {
    for seed in [
        0xD0_0001u64,
        0xD0_0002,
        0xD0_0003,
        0xD0_0004,
        0xD0_0005,
        0xD0_0006,
        0xD0_0007,
        0xD0_0008,
    ] {
        let mut o = run(seed, Shutdown::Drop);
        assert!(
            o.report.dropped > 0,
            "seed {seed:#x}: the straddled backlog must make the drop \
             path non-vacuous: {:?}",
            o.report
        );
        assert_eq!(
            o.report.delivered + o.report.dropped,
            o.report.sent,
            "seed {seed:#x}: every envelope applied or discarded whole: {:?}",
            o.report
        );
        assert_eq!(
            o.report.dropped_by_class[0], 0,
            "seed {seed:#x}: the DSM class must never be dropped: {:?}",
            o.report
        );
        verify_final_state(&mut o, seed);
    }
}

/// A failed quiesce is advisory, not corrupting: when the backlog cannot
/// drain inside the deadline, `quiesce` reports `false` and a subsequent
/// `shutdown(Drain)` still gives every in-flight envelope its legal fate —
/// per-class accounting conserves exactly (`sent == delivered + dropped`
/// for *each* message class, not just in aggregate) and the final state
/// passes the same audit set as a clean run.
#[test]
fn failed_quiesce_then_drain_conserves_per_class() {
    for seed in [0xBAD_0001u64, 0xBAD_0002, 0xBAD_0003, 0xBAD_0004] {
        let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(NODES));
        let h0 = pc.handle(n(0));
        let bunch = h0.create_bunch().expect("bunch");
        let obj = h0
            .alloc(bunch, &ObjSpec::with_refs(2, &[0]))
            .expect("alloc");
        h0.add_root(obj).expect("root");
        let mut live = vec![(n(0), obj)];
        for i in 1..NODES {
            let h = pc.handle(n(i));
            h.map_bunch(bunch, n(0)).expect("map");
            h.add_root(obj).expect("root");
            live.push((n(i), obj));
        }
        assert!(pc.quiesce(Duration::from_secs(10)), "setup quiesce");

        // Straddle thread: export a collection backlog to the transport,
        // then hold the protocol lock long past the quiesce deadline so
        // the drivers cannot apply it.
        let straddle = {
            let h = pc.handle(n(seed as u32 % NODES));
            let home = n(seed as u32 % NODES);
            std::thread::spawn(move || {
                h.with(|c| {
                    for _ in 0..4 {
                        c.run_bgc(home, bunch)?;
                    }
                    std::thread::sleep(Duration::from_millis(60));
                    Ok(())
                })
                .expect("straddle collections");
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        assert!(
            !pc.quiesce(Duration::from_millis(5)),
            "seed {seed:#x}: a lock-held backlog must fail a 5ms quiesce"
        );
        let (mut cluster, report) = pc.shutdown(Shutdown::Drain).expect("shutdown");
        straddle.join().expect("straddle thread");
        assert!(report.sent > 0, "seed {seed:#x}: vacuous run");
        for class in 0..4 {
            assert_eq!(
                report.sent_by_class[class],
                report.delivered_by_class[class] + report.dropped_by_class[class],
                "seed {seed:#x}: class {class} leaked an envelope: {report:?}"
            );
        }
        assert_eq!(
            report.dropped, 0,
            "seed {seed:#x}: drain after failed quiesce dropped: {report:?}"
        );
        cluster.settle(50_000).unwrap();
        cluster.assert_gc_acquired_no_tokens();
        audit::assert_no_premature_reclamation(&cluster, &live);
        audit::assert_clean(&cluster);
    }
}

/// The post-shutdown audit set shared by both modes: the returned cluster
/// runs deterministically again, every increment that reported success is
/// in the heap, no root was reclaimed, and the structural audit is clean.
fn verify_final_state(o: &mut Outcome, seed: u64) {
    let (n0, obj) = o.live[0];
    let c = &mut o.cluster;
    c.settle(50_000).unwrap();
    c.acquire_read(n0, obj).unwrap();
    let v = c.read_data(n0, obj, 1).unwrap();
    c.release(n0, obj).unwrap();
    assert_eq!(
        v, o.incs_applied,
        "seed {seed:#x}: an acknowledged increment went missing"
    );
    c.assert_gc_acquired_no_tokens();
    audit::assert_no_premature_reclamation(c, &o.live);
    audit::assert_clean(c);
}
