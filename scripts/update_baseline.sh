#!/usr/bin/env bash
# Refreshes the committed perf baseline (BENCH_baseline.json).
#
# Run this after an INTENTIONAL perf change — a new experiment, a changed
# workload shape, or an accepted regression — then commit the result with
# a message saying why the numbers moved. The perf CI lane
# (.github/workflows/perf.yml) diffs every PR's fresh tables against this
# file with `bench-diff`, so a stale baseline is how regressions sneak in
# and an unexplained refresh is how they get laundered; reviewers should
# treat a BENCH_baseline.json diff like a lockfile diff.
#
# The baseline is the cell-wise best of $RUNS (default 2) regenerations,
# matching what the CI lane does on the measurement side: wall-clock cells
# keep their minimum, achievement counters their maximum, and the
# deterministic counters are identical across runs by construction.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-2}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

cargo build --release --locked -p bmx-bench

snapshots=()
for i in $(seq 1 "$RUNS"); do
    echo "== tables run $i/$RUNS" >&2
    ./target/release/tables >/dev/null
    cp BENCH_tables.json "$tmp/run$i.json"
    snapshots+=("$tmp/run$i.json")
done

./target/release/bench-diff --merge BENCH_baseline.json "${snapshots[@]}"
echo "BENCH_baseline.json refreshed — commit it together with the change that moved the numbers." >&2
