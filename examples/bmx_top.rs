//! `bmx-top`: a live terminal dashboard over the metrics plane.
//!
//! Installs the metrics registry, drives a 3-node churning cluster through
//! a mildly faulty network (drops, duplicates, a timed partition, a crash/
//! restart), and redraws a `top`-style screen every few simulation rounds:
//! per-node GC and DSM health, the link traffic matrix, and any watchdog
//! alarms. Everything on screen is read back from the same
//! [`bmx_repro::metrics`] registry a production deployment would scrape
//! via the Prometheus endpoint (see DESIGN.md §9).
//!
//! Run with: `cargo run --example bmx_top [frames]`
//! (default 12 frames; set `BMX_TOP_FAST=1` to skip the inter-frame sleep,
//! which CI does).

use bmx_repro::metrics::{self, Ctr, Gge, Hst, LinkCtr, Registry};
use bmx_repro::prelude::*;
use bmx_repro::trace;
use bmx_repro::workloads::churn;

const NODES: u32 = 3;

/// Approximate quantile from a power-of-two histogram: the upper bound of
/// the first bucket whose cumulative count reaches `q` of the total.
fn quantile(reg: &Registry, node: u32, h: Hst, q: f64) -> String {
    let scope = reg.node(node);
    let hist = scope.hist(h);
    let total = hist.count();
    if total == 0 {
        return "-".to_string();
    }
    let need = (total as f64 * q).ceil() as u64;
    let mut seen = 0;
    for (bound, cum) in hist.cumulative() {
        seen = cum;
        if seen >= need {
            return match bound {
                Some(b) => format!("≤{b}"),
                None => "inf".to_string(),
            };
        }
    }
    let _ = seen;
    "inf".to_string()
}

fn frame(c: &Cluster, reg: &Registry, round: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bmx-top — tick {:>6}  round {:>4}  alarms {}\n\n",
        c.net.now(),
        round,
        reg.total_alarms(),
    ));

    out.push_str(
        "node  bgc  pause_p50(us)  acq_rd_p50  acq_wr_p50  inflight_B  \
         fromspace_W  scions  stubs  retryq\n",
    );
    for i in 0..NODES {
        let scope = reg.node(i);
        out.push_str(&format!(
            "{:>4}  {:>3}  {:>13}  {:>10}  {:>10}  {:>10}  {:>11}  {:>6}  {:>5}  {:>6}\n",
            i,
            scope.ctr(Ctr::BgcCollections),
            quantile(reg, i, Hst::BgcPauseMicros, 0.5),
            quantile(reg, i, Hst::AcquireReadTicks, 0.5),
            quantile(reg, i, Hst::AcquireWriteTicks, 0.5),
            scope.gauge(Gge::InflightBytes),
            scope.gauge(Gge::FromSpaceRetainedWords),
            scope.gauge(Gge::ScionTableSize),
            scope.gauge(Gge::StubTableSize),
            scope.gauge(Gge::RetryQueueDepth),
        ));
    }

    out.push_str("\nlink        sent      bytes   dropped  duplicated  retried\n");
    for s in 0..NODES {
        for d in 0..NODES {
            if s == d {
                continue;
            }
            let l = reg.link(s, d);
            if l.ctr(LinkCtr::Send) == 0 && l.ctr(LinkCtr::Drop) == 0 {
                continue;
            }
            out.push_str(&format!(
                "{s}→{d}   {:>9}  {:>9}  {:>8}  {:>10}  {:>7}\n",
                l.ctr(LinkCtr::Send),
                l.ctr(LinkCtr::Bytes),
                l.ctr(LinkCtr::Drop),
                l.ctr(LinkCtr::Duplicate),
                l.ctr(LinkCtr::Retry),
            ));
        }
    }
    out
}

fn main() -> Result<()> {
    let frames: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let fast = std::env::var("BMX_TOP_FAST").is_ok_and(|v| v == "1");

    let reg = metrics::install();
    trace::install_ring(4096);

    let plan = FaultPlan::none()
        .all_links(LinkFault {
            drop: 0.08,
            duplicate: 0.15,
            jitter: 2,
        })
        .partition(vec![NodeId(0)], vec![NodeId(1), NodeId(2)], 400, 650)
        .crash(NodeId(2), 900, 1080);
    let mut net = NetworkConfig::lossless(1).with_fault(plan);
    net.seed = 0x70_D0;
    let mut c = Cluster::new(ClusterConfig {
        nodes: NODES,
        net,
        retry: Some(RetryPolicy::default()),
        ..Default::default()
    });

    let mut sites = Vec::new();
    for i in 0..NODES {
        let node = NodeId(i);
        let b = c.create_bunch(node)?;
        let reg_obj = c.alloc(node, b, &ObjSpec::with_refs(1, &[0]))?;
        c.add_root(node, reg_obj);
        sites.push((node, b, reg_obj));
    }
    let shared = c.create_bunch(NodeId(0))?;
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(NodeId(0), shared, &ObjSpec::with_refs(2, &[0]))?;
            c.add_root(NodeId(0), o);
            Ok(o)
        })
        .collect::<Result<_>>()?;
    c.map_bunch(NodeId(1), shared, NodeId(0))?;
    c.map_bunch(NodeId(2), shared, NodeId(0))?;

    let mut round = 0u64;
    for _ in 0..frames {
        for _ in 0..4 {
            churn::chaos_round(&mut c, &sites, &migrate, round as usize, 0x70_D0)?;
            c.run_bgc(NodeId(0), shared)?;
            round += 1;
        }
        // Clear screen + home, then the frame. Plain prints, no TUI deps.
        print!("\x1b[2J\x1b[H{}", frame(&c, &reg, round));
        if !fast {
            std::thread::sleep(std::time::Duration::from_millis(250));
        }
    }
    c.settle(3_000)?;

    println!("\nfinal snapshot (JSON excerpt):");
    let snap = metrics::snapshot();
    for (k, v) in snap
        .diff(&metrics::Snapshot::default())
        .iter()
        .filter(|(k, _)| k.contains("bgc_collections") || k.starts_with("alarm/"))
    {
        println!("  {k} = {v}");
    }
    println!("\nPrometheus exposition is one call away:");
    let prom = metrics::prometheus::render(&reg);
    for line in prom.lines().take(8) {
        println!("  {line}");
    }
    println!("  … ({} lines total)", prom.lines().count());
    Ok(())
}
