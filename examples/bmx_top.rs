//! `bmx-top`: a live terminal dashboard over the metrics plane.
//!
//! Installs the metrics registry, drives a 3-node churning cluster through
//! a mildly faulty network (drops, duplicates, a timed partition, a crash/
//! restart), and redraws a `top`-style screen every few simulation rounds:
//! per-node GC and DSM health, the link traffic matrix, and any watchdog
//! alarms. Everything on screen is read back from the same
//! [`bmx_repro::metrics`] registry a production deployment would scrape
//! via the Prometheus endpoint (see DESIGN.md §9).
//!
//! Run with: `cargo run --example bmx_top [frames]`
//! (default 12 frames; set `BMX_TOP_FAST=1` to skip the inter-frame sleep,
//! which CI does).
//!
//! Pass `--parallel` (or set `BMX_TOP_PARALLEL=1`) to watch the *real
//! parallelism* runtime instead: a [`ParallelCluster`] with one driver
//! thread per node and racing mutator threads. Rates (ops/sec and
//! envelopes/sec) and the latency columns are derived by diffing
//! consecutive [`Registry::snapshot`]s — per-interval readings, not
//! monotonic totals — including a last-interval p99 over the wall-clock
//! acquire and protocol-mutex histograms ([`Hst::AcquireReadMicros`],
//! [`Hst::AcquireWriteMicros`], [`Hst::MutexWaitMicros`]) the E13
//! benchmark reports — same registry, different execution mode.

use bmx_repro::metrics::{self, Ctr, Gge, Hst, LinkCtr, Registry, Snapshot};
use bmx_repro::prelude::*;
use bmx_repro::trace;
use bmx_repro::workloads::churn;

const NODES: u32 = 3;

/// Approximate quantile from a power-of-two histogram: the upper bound of
/// the first bucket whose cumulative count reaches `q` of the total.
fn quantile(reg: &Registry, node: u32, h: Hst, q: f64) -> String {
    let scope = reg.node(node);
    let hist = scope.hist(h);
    let total = hist.count();
    if total == 0 {
        return "-".to_string();
    }
    let need = (total as f64 * q).ceil() as u64;
    let mut seen = 0;
    for (bound, cum) in hist.cumulative() {
        seen = cum;
        if seen >= need {
            return match bound {
                Some(b) => format!("≤{b}"),
                None => "inf".to_string(),
            };
        }
    }
    let _ = seen;
    "inf".to_string()
}

/// Approximate quantile over the *last interval only*: reconstructs the
/// interval's bucket counts by diffing the cumulative `le_*` readings of
/// two consecutive snapshots. Cumulative quantiles converge to the
/// steady-state mix and stop moving; the interval quantile is what a
/// dashboard actually wants — "how slow were acquires *just now*".
fn interval_quantile(prev: &Snapshot, cur: &Snapshot, node: u32, hist: &str, q: f64) -> String {
    let base = format!("node{node}/hist/{hist}");
    let total = cur
        .get(&format!("{base}/count"))
        .saturating_sub(prev.get(&format!("{base}/count")));
    if total == 0 {
        return "-".to_string();
    }
    let need = (total as f64 * q).ceil() as u64;
    // Bucket bounds, in order, recovered from the snapshot's own paths
    // (the `le_inf` overflow bucket sorts last by construction).
    let le_prefix = format!("{base}/le_");
    let mut bounds: Vec<u64> = cur
        .entries
        .keys()
        .filter_map(|k| k.strip_prefix(&le_prefix))
        .filter_map(|b| b.parse().ok())
        .collect();
    bounds.sort_unstable();
    for b in bounds {
        let key = format!("{base}/le_{b}");
        if cur.get(&key).saturating_sub(prev.get(&key)) >= need {
            return format!("≤{b}");
        }
    }
    "inf".to_string()
}

/// Per-second rate of a counter path between two snapshots.
fn rate(prev: &Snapshot, cur: &Snapshot, path: &str, dt: f64) -> u64 {
    (cur.get(path).saturating_sub(prev.get(path)) as f64 / dt) as u64
}

fn frame(c: &Cluster, reg: &Registry, round: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bmx-top — tick {:>6}  round {:>4}  alarms {}\n\n",
        c.net.now(),
        round,
        reg.total_alarms(),
    ));

    out.push_str(
        "node  bgc  pause_p50(us)  acq_rd_p50  acq_wr_p50  inflight_B  \
         fromspace_W  scions  stubs  retryq\n",
    );
    for i in 0..NODES {
        let scope = reg.node(i);
        out.push_str(&format!(
            "{:>4}  {:>3}  {:>13}  {:>10}  {:>10}  {:>10}  {:>11}  {:>6}  {:>5}  {:>6}\n",
            i,
            scope.ctr(Ctr::BgcCollections),
            quantile(reg, i, Hst::BgcPauseMicros, 0.5),
            quantile(reg, i, Hst::AcquireReadTicks, 0.5),
            quantile(reg, i, Hst::AcquireWriteTicks, 0.5),
            scope.gauge(Gge::InflightBytes),
            scope.gauge(Gge::FromSpaceRetainedWords),
            scope.gauge(Gge::ScionTableSize),
            scope.gauge(Gge::StubTableSize),
            scope.gauge(Gge::RetryQueueDepth),
        ));
    }

    out.push_str("\nlink        sent      bytes   dropped  duplicated  retried\n");
    for s in 0..NODES {
        for d in 0..NODES {
            if s == d {
                continue;
            }
            let l = reg.link(s, d);
            if l.ctr(LinkCtr::Send) == 0 && l.ctr(LinkCtr::Drop) == 0 {
                continue;
            }
            out.push_str(&format!(
                "{s}→{d}   {:>9}  {:>9}  {:>8}  {:>10}  {:>7}\n",
                l.ctr(LinkCtr::Send),
                l.ctr(LinkCtr::Bytes),
                l.ctr(LinkCtr::Drop),
                l.ctr(LinkCtr::Duplicate),
                l.ctr(LinkCtr::Retry),
            ));
        }
    }
    out
}

/// The `--parallel` dashboard: real threads, wall-clock histograms.
fn run_parallel(frames: u64, fast: bool) -> Result<()> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let reg = metrics::install();
    // A modest chaos plan so the dashboard has failure-domain state to
    // show: small delays on every link, plus a supervisor that restarts
    // crashed drivers live (an injected crash below demos the
    // down -> recovering -> alive arc).
    let chaos = bmx::ChaosConfig {
        seed: 0xB070_5EED,
        plan: ParallelFaultPlan::default().all_links(ParallelLinkFault {
            delay: 0.05,
            ..Default::default()
        }),
        ..Default::default()
    };
    // Crash-amnesia recovery replays the RVM store; without it a revived
    // node comes back knowing nothing (its bunches unmapped, every op an
    // error). Give the cluster a store and cut a checkpoint after setup.
    let persist_dir = std::env::temp_dir().join(format!("bmx-top-parallel-{}", std::process::id()));
    let mut cfg = ClusterConfig::with_nodes(NODES);
    cfg.persist = Some(PersistConfig::at(&persist_dir));
    let pc = bmx::ParallelCluster::spawn_with_chaos(cfg, chaos);
    let h0 = pc.handle(NodeId(0));
    let bunch = h0.create_bunch()?;
    let objs: Vec<Addr> = (0..4)
        .map(|_| {
            let o = h0.alloc(bunch, &ObjSpec::with_refs(2, &[0]))?;
            h0.add_root(o)?;
            Ok(o)
        })
        .collect::<Result<_>>()?;
    for i in 1..NODES {
        let h = pc.handle(NodeId(i));
        h.map_bunch(bunch, NodeId(0))?;
        for &o in &objs {
            h.add_root(o)?;
        }
    }
    // Checkpoints are cut at collections: one per node so the RVM store
    // holds the mapped bunch before any crash.
    for i in 0..NODES {
        pc.handle(NodeId(i)).run_bgc(bunch)?;
    }
    assert!(
        pc.quiesce(Duration::from_secs(10)),
        "setup failed to quiesce"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mutators: Vec<_> = (0..NODES)
        .map(|i| {
            let h = pc.handle(NodeId(i));
            let objs = objs.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                h.bind_metrics();
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let o = objs[k % objs.len()];
                    k += 1;
                    let step = || -> Result<()> {
                        if k.is_multiple_of(3) {
                            h.acquire_read(o)?;
                            let _ = h.read_data(o, 1)?;
                        } else {
                            h.acquire_write(o)?;
                            let v = h.read_data(o, 1)?;
                            h.write_data(o, 1, v + 1)?;
                        }
                        h.release(o)
                    };
                    if step().is_err() {
                        // A NodeDown/WouldBlock while a peer is crashed or
                        // recovering: back off and retry — the supervisor
                        // restarts the node live.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();

    // Rates and "just now" latency come from *snapshot diffs*: each frame
    // takes a full registry snapshot and compares it against the previous
    // frame's. Raw counters only ever grow; the diff is what moves.
    let mut last_snap = reg.snapshot();
    let mut last_t = Instant::now();
    for f in 0..frames {
        if !fast {
            std::thread::sleep(Duration::from_millis(250));
        } else {
            std::thread::sleep(Duration::from_millis(20));
        }
        // A third of the way in, crash a node on purpose: the next frames
        // show its failure domain go down, recover, and rejoin while the
        // survivors keep serving.
        if f == frames / 3 {
            pc.inject_crash(NodeId(NODES - 1));
        }
        let snap = reg.snapshot();
        let dt = last_t.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        last_t = Instant::now();
        let total_rate = |ctr: &str| -> u64 {
            (0..NODES)
                .map(|i| rate(&last_snap, &snap, &format!("node{i}/ctr/{ctr}"), dt))
                .sum()
        };

        let mut out = format!(
            "bmx-top (parallel) — frame {:>3}  ops {:>9}  ops/sec {:>8}  env/sec {:>8}  in-flight {}\n\n",
            f,
            pc.ops(),
            total_rate("parallel_ops"),
            total_rate("parallel_deliveries"),
            pc.in_flight(),
        );
        out.push_str(
            "node  status      restarts  last_alarm     ops/s   env/s  \
             acq_rd_p99(us)  acq_wr_p99(us)  mtx_wait_p99(us)\n",
        );
        let liveness = pc.liveness();
        for i in 0..NODES {
            let lv = &liveness[i as usize];
            let status = match lv.status {
                bmx::NodeStatus::Alive => "alive",
                bmx::NodeStatus::Recovering => "recovering",
                bmx::NodeStatus::Down => "down",
            };
            let alarm = reg
                .last_alarm(i)
                .map_or_else(|| "-".to_string(), |k| format!("{k:?}"));
            out.push_str(&format!(
                "{:>4}  {:<10}  {:>8}  {:<13}  {:>6}  {:>6}  {:>14}  {:>14}  {:>16}\n",
                i,
                status,
                lv.restarts,
                alarm,
                rate(&last_snap, &snap, &format!("node{i}/ctr/parallel_ops"), dt),
                rate(
                    &last_snap,
                    &snap,
                    &format!("node{i}/ctr/parallel_deliveries"),
                    dt
                ),
                interval_quantile(&last_snap, &snap, i, "acquire_read_micros", 0.99),
                interval_quantile(&last_snap, &snap, i, "acquire_write_micros", 0.99),
                interval_quantile(&last_snap, &snap, i, "mutex_wait_micros", 0.99),
            ));
        }
        last_snap = snap;
        print!("\x1b[2J\x1b[H{out}");
    }

    stop.store(true, Ordering::Relaxed);
    for m in mutators {
        let _ = m.join();
    }
    assert!(pc.quiesce(Duration::from_secs(10)), "failed to quiesce");
    let (cluster, report) = pc.shutdown(Shutdown::Drain)?;
    cluster.assert_gc_acquired_no_tokens();
    println!(
        "\nshutdown: sent {} delivered {} dropped {} restarts {}",
        report.sent, report.delivered, report.dropped, report.restarts
    );
    let _ = std::fs::remove_dir_all(&persist_dir);
    Ok(())
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parallel = args.iter().any(|a| a == "--parallel")
        || std::env::var("BMX_TOP_PARALLEL").is_ok_and(|v| v == "1");
    let frames: u64 = args.iter().find_map(|s| s.parse().ok()).unwrap_or(12);
    let fast = std::env::var("BMX_TOP_FAST").is_ok_and(|v| v == "1");
    if parallel {
        return run_parallel(frames, fast);
    }

    let reg = metrics::install();
    trace::install_ring(4096);

    let plan = FaultPlan::none()
        .all_links(LinkFault {
            drop: 0.08,
            duplicate: 0.15,
            jitter: 2,
        })
        .partition(vec![NodeId(0)], vec![NodeId(1), NodeId(2)], 400, 650)
        .crash(NodeId(2), 900, 1080);
    let mut net = NetworkConfig::lossless(1).with_fault(plan);
    net.seed = 0x70_D0;
    let mut c = Cluster::new(ClusterConfig {
        nodes: NODES,
        net,
        retry: Some(RetryPolicy::default()),
        ..Default::default()
    });

    let mut sites = Vec::new();
    for i in 0..NODES {
        let node = NodeId(i);
        let b = c.create_bunch(node)?;
        let reg_obj = c.alloc(node, b, &ObjSpec::with_refs(1, &[0]))?;
        c.add_root(node, reg_obj);
        sites.push((node, b, reg_obj));
    }
    let shared = c.create_bunch(NodeId(0))?;
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c.alloc(NodeId(0), shared, &ObjSpec::with_refs(2, &[0]))?;
            c.add_root(NodeId(0), o);
            Ok(o)
        })
        .collect::<Result<_>>()?;
    c.map_bunch(NodeId(1), shared, NodeId(0))?;
    c.map_bunch(NodeId(2), shared, NodeId(0))?;

    let mut round = 0u64;
    for _ in 0..frames {
        for _ in 0..4 {
            churn::chaos_round(&mut c, &sites, &migrate, round as usize, 0x70_D0)?;
            c.run_bgc(NodeId(0), shared)?;
            round += 1;
        }
        // Clear screen + home, then the frame. Plain prints, no TUI deps.
        print!("\x1b[2J\x1b[H{}", frame(&c, &reg, round));
        if !fast {
            std::thread::sleep(std::time::Duration::from_millis(250));
        }
    }
    c.settle(3_000)?;

    println!("\nfinal snapshot (JSON excerpt):");
    let snap = metrics::snapshot();
    for (k, v) in snap
        .diff(&metrics::Snapshot::default())
        .iter()
        .filter(|(k, _)| k.contains("bgc_collections") || k.starts_with("alarm/"))
    {
        println!("  {k} = {v}");
    }
    println!("\nPrometheus exposition is one call away:");
    let prom = metrics::prometheus::render(&reg);
    for line in prom.lines().take(8) {
        println!("  {line}");
    }
    println!("  … ({} lines total)", prom.lines().count());
    Ok(())
}
