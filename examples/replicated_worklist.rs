//! A cooperative-work worklist — the paper's "cooperative work" workload
//! (Section 1).
//!
//! Four nodes share a ring of work items. A coordinator enqueues jobs;
//! workers claim them by taking write tokens (ownership migrates to
//! whoever processes the item), mark them done, and detach them. The
//! churn produces garbage on every node's replica, ownership migrations
//! produce intra-bunch SSPs, collections run concurrently with the work,
//! and the from-space reuse protocol recycles the addresses at the end.
//!
//! Run with: `cargo run --example replicated_worklist`

use bmx_repro::prelude::*;

const NEXT: u64 = 0;
const STATUS: u64 = 1;
const PAYLOAD: u64 = 2;

fn main() -> Result<()> {
    let mut cluster = Cluster::new(ClusterConfig::with_nodes(4));
    let coord = NodeId(0);
    let workers = [NodeId(1), NodeId(2), NodeId(3)];

    let bunch = cluster.create_bunch(coord)?;
    // The queue head object: one pointer slot to the first pending item.
    let queue = cluster.alloc(coord, bunch, &ObjSpec::with_refs(1, &[0]))?;
    cluster.add_root(coord, queue);
    for &w in &workers {
        cluster.map_bunch(w, bunch, coord)?;
        cluster.add_root(w, queue);
    }

    let mut done = 0u64;
    let mut produced = 0u64;
    for round in 0..6 {
        // The coordinator enqueues a batch of jobs (a linked chain).
        let batch = 5;
        let mut chain = Addr::NULL;
        for j in 0..batch {
            let item = cluster.alloc(coord, bunch, &ObjSpec::with_refs(3, &[NEXT]))?;
            cluster.write_data(coord, item, PAYLOAD, round * 100 + j)?;
            cluster.write_ref(coord, item, NEXT, chain)?;
            chain = item;
            produced += 1;
        }
        cluster.acquire_write(coord, queue)?;
        cluster.write_ref(coord, queue, 0, chain)?;
        cluster.release(coord, queue)?;

        // Workers drain the queue: each claims the head item under the
        // queue's write token, detaches it, then processes it under the
        // item's own write token (ownership migrates to the worker).
        let mut w = 0usize;
        loop {
            let worker = workers[w % workers.len()];
            w += 1;
            cluster.acquire_write(worker, queue)?;
            let item = cluster.read_ref(worker, queue, 0)?;
            if item.is_null() {
                cluster.release(worker, queue)?;
                break;
            }
            let rest = {
                cluster.acquire_write(worker, item)?;
                let rest = cluster.read_ref(worker, item, NEXT)?;
                cluster.write_data(worker, item, STATUS, 1)?; // done
                cluster.release(worker, item)?;
                rest
            };
            cluster.write_ref(worker, queue, 0, rest)?;
            cluster.release(worker, queue)?;
            done += 1;
            // Detached items are garbage once processed.
        }

        // Concurrent housekeeping: every node collects its own replica on
        // its own schedule — no tokens move for the collector.
        for node in [coord, workers[0], workers[1], workers[2]] {
            cluster.run_bgc(node, bunch)?;
        }
    }
    println!("processed {done}/{produced} work items across 3 workers");
    assert_eq!(done, produced);
    cluster.assert_gc_acquired_no_tokens();

    let reclaimed: u64 = cluster.total_stat(StatKind::ObjectsReclaimed);
    println!("collections reclaimed {reclaimed} dead item replicas along the way");
    assert!(reclaimed > 0);

    // Recycle the coordinator's retired from-space segments: the explicit
    // background round of Section 4.5, the only GC traffic that is not
    // piggy-backed.
    let recycled = cluster.reuse_from_space(coord, bunch)?;
    println!("from-space recycled at the coordinator: {recycled}");

    // The queue object is alive and empty on every node.
    for node in [coord, workers[0], workers[1], workers[2]] {
        cluster.acquire_read(node, queue)?;
        assert!(cluster.read_ref(node, queue, 0)?.is_null());
        cluster.release(node, queue)?;
    }
    println!(
        "ok: {} piggy-backed relocation records, {} explicit relocation messages",
        cluster.total_stat(StatKind::PiggybackedRelocations),
        cluster.total_stat(StatKind::ExplicitRelocationMessages),
    );
    Ok(())
}
