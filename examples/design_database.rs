//! A cooperative design database — the paper's first motivating workload
//! ("financial or design databases", Section 1).
//!
//! Three designer workstations share a persistent module/assembly/part
//! hierarchy. Designers check assemblies out (write tokens), edit parts,
//! and check them back in; each node runs its bunch garbage collector on
//! its own schedule, without ever disturbing the others' tokens; finally
//! the database is checkpointed through RVM, "crashes", and recovers.
//!
//! Run with: `cargo run --example design_database`

use bmx_repro::bmx::persist;
use bmx_repro::prelude::*;
use bmx_repro::rvm::{Rvm, RvmOptions};
use bmx_repro::workloads::db;

fn main() -> Result<()> {
    let mut cluster = Cluster::new(ClusterConfig::with_nodes(3));
    let (server, alice, bob) = (NodeId(0), NodeId(1), NodeId(2));

    // The server node hosts the database bunch: 4 assemblies x 6 parts.
    let bunch = cluster.create_bunch(server)?;
    let graph = db::build_db(&mut cluster, server, bunch, 4, 6)?;
    cluster.add_root(server, graph.module);
    println!("database built: {} objects", graph.object_count());

    // Designers map replicas.
    cluster.map_bunch(alice, bunch, server)?;
    cluster.map_bunch(bob, bunch, server)?;
    cluster.add_root(alice, graph.module);
    cluster.add_root(bob, graph.module);

    // Alice checks out assembly 0: she takes write tokens on its parts and
    // bumps their revision payloads.
    for &part in &graph.parts[0] {
        cluster.acquire_write(alice, part)?;
        let rev = cluster.read_data(alice, part, 1)?;
        cluster.write_data(alice, part, 1, rev + 1000)?;
        cluster.release(alice, part)?;
    }
    println!(
        "alice edited assembly 0 (owns its {} parts now)",
        graph.parts[0].len()
    );

    // Bob reads assembly 1 concurrently — read tokens, no conflict.
    for &part in &graph.parts[1] {
        cluster.acquire_read(bob, part)?;
        let _ = cluster.read_data(bob, part, 1)?;
        cluster.release(bob, part)?;
    }

    // The server drops assembly 3 from the module (under the write token):
    // it becomes garbage, ring-cycle and all.
    cluster.acquire_write(server, graph.module)?;
    db::drop_assembly(&mut cluster, server, &graph, 3)?;
    cluster.release(server, graph.module)?;

    // Everyone collects independently. Alice's BGC copies the parts she
    // owns. Note the weak-consistency fidelity here: until the designers
    // synchronize on the module, their stale replicas still reach assembly
    // 3, so their collectors conservatively keep it and their entering
    // ownerPtrs keep the server from reclaiming it — exactly Section 4.2's
    // "scanning an old version results in a more conservative decision".
    let sa = cluster.run_bgc(alice, bunch)?;
    println!(
        "alice's BGC: copied {} (her checked-out parts), scanned {}",
        sa.copied, sa.scanned
    );
    let ss = cluster.run_bgc(server, bunch)?;
    assert_eq!(ss.reclaimed, 0, "remote replicas still protect assembly 3");
    println!(
        "server's BGC while designers are stale: reclaimed {}",
        ss.reclaimed
    );

    // The designers synchronize on the module and collect again; their
    // replicas of assembly 3 die, the reachability tables inform the
    // server, and its next collection reclaims the assembly and its parts.
    for designer in [alice, bob] {
        cluster.acquire_read(designer, graph.module)?;
        cluster.release(designer, graph.module)?;
        cluster.run_bgc(designer, bunch)?;
    }
    let ss = cluster.run_bgc(server, bunch)?;
    println!(
        "server's BGC after designers synced: reclaimed {}",
        ss.reclaimed
    );
    assert_eq!(ss.reclaimed, 7, "assembly 3 plus its six parts");
    cluster.assert_gc_acquired_no_tokens();

    // Bob still reads Alice's revisions through the DSM, wherever the
    // copies now live on each node.
    cluster.acquire_read(bob, graph.parts[0][0])?;
    let rev = cluster.read_data(bob, graph.parts[0][0], 1)?;
    cluster.release(bob, graph.parts[0][0])?;
    assert_eq!(rev, 1000);
    println!("bob sees alice's revision: {rev}");

    // Persistence by reachability: checkpoint the server's replica, crash
    // it, and recover from the RVM store.
    let dir = std::env::temp_dir().join("bmx-example-design-db");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut rvm =
            Rvm::open(&dir, RvmOptions::default()).map_err(|e| BmxError::Rvm(e.to_string()))?;
        persist::checkpoint_bunch(&mut cluster, server, bunch, &mut rvm)?;
        println!("checkpointed {} bytes of log", rvm.log_bytes());
    } // <- crash: cluster state for the server node is rebuilt below

    let mut recovered = Cluster::new(ClusterConfig::with_nodes(1));
    let bunch2 = recovered.create_bunch(NodeId(0))?;
    let mut rvm =
        Rvm::open(&dir, RvmOptions::default()).map_err(|e| BmxError::Rvm(e.to_string()))?;
    let segs = persist::recover_bunch(&mut recovered, NodeId(0), bunch2, &mut rvm)?;
    println!("recovered {segs} segments after the crash");
    // The dropped assembly is still gone; the surviving graph is intact.
    let module = graph.module;
    let asm0 = recovered.read_ref(NodeId(0), module, 0)?;
    assert!(!asm0.is_null());
    let asm3 = recovered.read_ref(NodeId(0), module, 3)?;
    assert!(asm3.is_null(), "the dropped assembly stayed dropped");
    println!("ok: durable, collected, weakly consistent design database");
    Ok(())
}
