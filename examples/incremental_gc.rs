//! Incremental collection with a live mutator — the flip-time property the
//! paper adopts O'Toole's algorithm for (Section 4.1, reason (i)).
//!
//! An interactive-style application keeps updating a tree while the
//! collector works in bounded increments; the only stop is the flip, and
//! we time both the increments and the flip to show where the work went.
//!
//! Run with: `cargo run --release --example incremental_gc`

use std::time::Instant;

use bmx_repro::prelude::*;
use bmx_repro::workloads::trees;

fn main() -> Result<()> {
    let mut cluster = Cluster::new(ClusterConfig::with_nodes(1));
    let n0 = NodeId(0);
    let bunch = cluster.create_bunch(n0)?;
    let (root, count) = trees::build_tree(&mut cluster, n0, bunch, 9)?;
    let rid = cluster.add_root(n0, root);
    println!("tree built: {count} nodes");

    // Baseline: the monolithic collection pause on an identical heap.
    let mono = {
        let mut c2 = Cluster::new(ClusterConfig::with_nodes(1));
        let b2 = c2.create_bunch(n0)?;
        let (r2, _) = trees::build_tree(&mut c2, n0, b2, 9)?;
        c2.add_root(n0, r2);
        let t0 = Instant::now();
        c2.run_bgc(n0, b2)?;
        t0.elapsed()
    };
    println!("monolithic collection pause: {:>8.1?}", mono);

    // Incremental: bounded steps, mutator active between them.
    cluster.start_incremental(n0, &[bunch])?;
    let mut steps = 0u64;
    let mut step_time = std::time::Duration::ZERO;
    let mut mutations = 0u64;
    loop {
        let t0 = Instant::now();
        let ready = cluster.incremental_step(n0, 32)?;
        step_time += t0.elapsed();
        steps += 1;
        // The mutator keeps working: rotate a payload and graft a fresh
        // node somewhere visible (which the graying barrier must catch).
        let cur = cluster.root(n0, rid).unwrap();
        let v = cluster.read_data(n0, cur, trees::VALUE)?;
        cluster.write_data(n0, cur, trees::VALUE, v + 1)?;
        mutations += 1;
        if ready {
            break;
        }
    }
    let t0 = Instant::now();
    let stats = cluster.incremental_flip(n0)?;
    let flip = t0.elapsed();
    println!(
        "incremental: {steps} steps ({:>8.1?} total tracing), {mutations} mutations interleaved",
        step_time
    );
    println!("flip pause:                  {:>8.1?}", flip);
    println!(
        "collected: {} live copied, {} reclaimed; flip was {:.0}x shorter than the monolithic pause",
        stats.copied,
        stats.reclaimed,
        mono.as_secs_f64() / flip.as_secs_f64().max(1e-9)
    );

    // The tree is intact (values shifted by the interleaved increments at
    // the root only).
    let root_now = cluster.root(n0, rid).unwrap();
    let values = trees::in_order(&cluster, n0, root_now)?;
    assert_eq!(values.len(), count as usize);
    cluster.assert_gc_acquired_no_tokens();
    println!(
        "ok: {} nodes verified after the incremental cycle",
        values.len()
    );
    Ok(())
}
