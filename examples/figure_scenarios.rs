//! Narrated walk-through of the paper's Figures 1–4.
//!
//! The assertion-checked versions live in `tests/figure_scenarios.rs`;
//! this binary replays Figure 1 and Figure 2 (the SSP construction and the
//! owned-only copy) printing the state the paper's figures draw, so you
//! can follow the design with the actual system underneath.
//!
//! Run with: `cargo run --example figure_scenarios`

use bmx_repro::prelude::*;

fn main() -> Result<()> {
    let mut c = Cluster::new(ClusterConfig::with_nodes(3));
    let (n1, n2, n3) = (NodeId(0), NodeId(1), NodeId(2));
    println!("(paper N1,N2,N3 = nodes {n1},{n2},{n3})\n");

    // ---- Figure 1 -----------------------------------------------------
    println!("== Figure 1: bunches, SSPs, ownerPtrs ==");
    let b1 = c.create_bunch(n1)?;
    let b2 = c.create_bunch(n3)?;
    let o1 = c.alloc(n1, b1, &ObjSpec::with_refs(2, &[0, 1]))?;
    let o2 = c.alloc(n1, b1, &ObjSpec::data(1))?;
    let o3 = c.alloc(n1, b1, &ObjSpec::with_refs(1, &[0]))?;
    let o5 = c.alloc(n3, b2, &ObjSpec::data(1))?;
    c.write_ref(n1, o1, 0, o2)?;
    c.write_ref(n1, o1, 1, o3)?;
    c.add_root(n1, o1);
    c.map_bunch(n2, b1, n1)?;
    c.add_root(n2, o1);
    c.add_root(n2, o3);
    println!("B1={b1} mapped on N1+N2; B2={b2} only on N3");

    c.acquire_write(n2, o3)?;
    c.write_ref(n2, o3, 0, o5)?; // the inter-bunch reference O3 -> O5
    c.release(n2, o3)?;
    let stubs = &c.gc.node(n2).bunch(b1).unwrap().stub_table.inter();
    println!(
        "after O3->O5 at N2: {} inter-bunch stub at N2 (scion at {}), {} at N1",
        stubs.len(),
        stubs[0].scion_at,
        c.gc.node(n1)
            .bunch(b1)
            .map_or(0, |b| b.stub_table.inter().len()),
    );
    c.acquire_write(n1, o3)?; // write token N2 -> N1
    c.release(n1, o3)?;
    println!(
        "after O3's token moved to N1: intra-bunch SSP stub@N1->scion@N2 = {}/{}",
        c.gc.node(n1).bunch(b1).unwrap().stub_table.intra().len(),
        c.gc.node(n2).bunch(b1).unwrap().scion_table.intra().len(),
    );

    // ---- Figure 2 -----------------------------------------------------
    println!("\n== Figure 2: the BGC copies only locally-owned objects ==");
    c.acquire_write(n2, o2)?; // O2's ownership moves to N2
    c.release(n2, o2)?;
    let s = c.run_bgc(n2, b1)?;
    println!(
        "BGC(B1)@N2: copied={} (O2), scanned={} (O1, O3)",
        s.copied, s.scanned
    );
    let v = bmx_repro::addr::object::view(&c.mems[1], o2).unwrap();
    println!("O2 at N2: forwarding header {o2} -> {}", v.forwarding);
    println!(
        "O1.field0 at N2 = {} (updated locally, no token); at N1 = {} (stale, still fine)",
        bmx_repro::addr::object::read_ref_field(&c.mems[1], o1, 0).unwrap(),
        bmx_repro::addr::object::read_ref_field(&c.mems[0], o1, 0).unwrap(),
    );
    println!(
        "pointer comparison at N2: old O2 == new O2 ? {}",
        c.ptr_eq(n2, o2, v.forwarding)
    );

    // A synchronization point brings N1 the relocation, piggy-backed.
    c.acquire_read(n1, o2)?;
    c.release(n1, o2)?;
    println!(
        "after N1's acquire: N1 resolves O2 -> {}; explicit relocation messages sent: {}",
        c.gc.node(n1).directory.resolve(o2),
        c.total_stat(StatKind::ExplicitRelocationMessages),
    );
    c.assert_gc_acquired_no_tokens();
    println!("\ncollector token acquisitions: 0 (checked)");
    Ok(())
}
