//! Quickstart: a two-node BMX cluster sharing one bunch of objects.
//!
//! Shows the whole surface in ~80 lines: create a bunch, allocate objects,
//! share them through entry-consistency tokens, run a bunch garbage
//! collection on each replica, and watch the collector's zero-token
//! discipline in the counters.
//!
//! Run with: `cargo run --example quickstart`

use bmx_repro::prelude::*;

fn main() -> Result<()> {
    // A deterministic two-node cluster.
    let mut cluster = Cluster::new(ClusterConfig::with_nodes(2));
    let (n1, n2) = (NodeId(0), NodeId(1));

    // Node N1 creates a bunch and allocates a tiny shared structure:
    //   account -> ledger (a one-field record pointing at a counter).
    let bunch = cluster.create_bunch(n1)?;
    let account = cluster.alloc(n1, bunch, &ObjSpec::with_refs(2, &[0]))?;
    let ledger = cluster.alloc(n1, bunch, &ObjSpec::data(1))?;
    cluster.write_ref(n1, account, 0, ledger)?;
    cluster.write_data(n1, account, 1, 7)?; // account id
    cluster.add_root(n1, account);

    // Node N2 maps a replica of the bunch and works on the same objects.
    cluster.map_bunch(n2, bunch, n1)?;
    cluster.add_root(n2, account);

    // Entry consistency: acquire, mutate, release.
    cluster.acquire_write(n2, ledger)?;
    cluster.write_data(n2, ledger, 0, 100)?;
    cluster.release(n2, ledger)?;

    cluster.acquire_read(n1, ledger)?;
    let balance = cluster.read_data(n1, ledger, 0)?;
    cluster.release(n1, ledger)?;
    println!("balance seen at N1 after N2's deposit: {balance}");
    assert_eq!(balance, 100);

    // Create some garbage at N1 and collect each replica independently.
    for _ in 0..5 {
        cluster.alloc(n1, bunch, &ObjSpec::data(8))?; // instantly unreachable
    }
    let s1 = cluster.run_bgc(n1, bunch)?;
    println!(
        "BGC at N1: copied {} objects, scanned {}, reclaimed {}",
        s1.copied, s1.scanned, s1.reclaimed
    );
    let s2 = cluster.run_bgc(n2, bunch)?;
    println!(
        "BGC at N2: copied {} objects, scanned {}, reclaimed {}",
        s2.copied, s2.scanned, s2.reclaimed
    );

    // The paper's central property: the collector never acquired a token.
    // N2 still owns the ledger and both nodes keep the read tokens they
    // held — no replica was invalidated on the collector's behalf.
    cluster.assert_gc_acquired_no_tokens();
    let ledger_oid = cluster.oid_at_local(n2, ledger)?;
    assert!(cluster.engine.is_owner(n2, ledger_oid));
    assert_eq!(cluster.token_at(n1, ledger)?, Token::Read);
    assert_eq!(cluster.token_at(n2, ledger)?, Token::Read);
    println!("collector acquired 0 tokens; N2 still owns the ledger");

    // Objects may now live at different addresses on the two nodes; the
    // pointer-comparison operation still identifies them.
    let account_at_n1 = cluster.gc.node(n1).directory.resolve(account);
    println!(
        "account address at N1 after GC: {account_at_n1} (was {account}); same object: {}",
        cluster.ptr_eq(n1, account, account_at_n1)
    );

    // Reads still work on both nodes, wherever the copies moved.
    assert_eq!(cluster.read_data(n1, account, 1)?, 7);
    assert_eq!(cluster.read_data(n2, account, 1)?, 7);
    println!("ok: weakly consistent replicas, independently collected");
    Ok(())
}
