//! Trace demo: capture a causal event trace of a two-node migration plus
//! collection, check the temporal invariants on it, and export it.
//!
//! Writes `trace.json` (Chrome `trace_event` format — open it in
//! `chrome://tracing` or drop it on <https://ui.perfetto.dev>; one process
//! per node, one thread per subsystem) and prints the merged
//! happens-before timeline.
//!
//! Run with: `cargo run --example trace_demo`

use bmx_repro::prelude::*;
use bmx_repro::trace;

fn main() {
    // Unbounded capture: this run is short. Long-lived runs use
    // `trace::install_ring(n)` — a bounded flight recorder.
    trace::install_vec();

    let mut c = Cluster::new(ClusterConfig::with_nodes(2));
    let (n0, n1) = (NodeId(0), NodeId(1));

    // A shared bunch at n0 with a few rooted objects, replicated at n1.
    let shared = c.create_bunch(n0).expect("bunch");
    let objs: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c
                .alloc(n0, shared, &ObjSpec::with_refs(2, &[0]))
                .expect("alloc");
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).expect("map");

    // Migrate ownership to n1 (token traffic, intra-bunch SSPs), collect
    // at the root holder (relocations), then read back from both sides
    // (lazy address update on re-acquire).
    for (i, &o) in objs.iter().enumerate() {
        c.acquire_write(n1, o).expect("acquire");
        c.write_data(n1, o, 1, 10 + i as u64).expect("write");
        c.release(n1, o).expect("release");
    }
    c.run_bgc(n0, shared).expect("bgc");
    for &o in &objs {
        for &site in &[n1, n0] {
            c.acquire_read(site, o).expect("re-acquire");
            c.release(site, o).expect("release");
        }
    }

    let records = trace::take();
    trace::disable();

    println!("merged happens-before timeline ({} events):", records.len());
    print!("{}", trace::query::human_timeline(&records));

    // The trace-backed invariants the queries encode (all must be clean).
    let scion = trace::query::scion_retirement_violations(&records);
    let addr = trace::query::address_update_violations(&records);
    let acq = trace::query::acquire_invariant_violations(&records);
    println!(
        "\ninvariants: scion-retirement {} | address-update {} | acquire {}",
        if scion.is_empty() { "ok" } else { "VIOLATED" },
        if addr.is_empty() { "ok" } else { "VIOLATED" },
        if acq.is_empty() { "ok" } else { "VIOLATED" },
    );
    assert!(scion.is_empty() && addr.is_empty() && acq.is_empty());

    let json = trace::chrome::export(&records);
    trace::chrome::validate(&json).expect("well-formed Chrome trace");
    std::fs::write("trace.json", &json).expect("write trace.json");
    println!("wrote trace.json — load it in chrome://tracing or ui.perfetto.dev");
}
