//! Chaos demo: the fault-injection plane and the retry daemon, end to end.
//!
//! Declares a fault plan (link loss, duplication, jitter, a timed partition,
//! a node crash/restart), drives a churning 3-node cluster through it, and
//! prints the recovery counters. Runs the same seed twice to show bit-exact
//! replay, then a different seed to show divergence.
//!
//! Run with: `cargo run --example chaos_demo [seed]`

use bmx_repro::prelude::*;
use bmx_repro::workloads::churn;

fn run(seed: u64) -> (FaultStats, Vec<(StatKind, u64)>) {
    let plan = FaultPlan::none()
        .all_links(LinkFault {
            drop: 0.12,
            duplicate: 0.25,
            jitter: 3,
        })
        .partition(vec![NodeId(0)], vec![NodeId(1), NodeId(2)], 400, 700)
        .crash(NodeId(2), 900, 1100);
    let mut net = NetworkConfig::lossless(1).with_fault(plan);
    net.seed = seed;
    let mut c = Cluster::new(ClusterConfig {
        nodes: 3,
        net,
        retry: Some(RetryPolicy::default()),
        ..Default::default()
    });

    // One bunch + rooted churn registry per node, plus a shared bunch
    // replicated everywhere whose collections and token migrations actually
    // cross the faulty links.
    let mut sites = Vec::new();
    for i in 0..3 {
        let node = NodeId(i);
        let b = c.create_bunch(node).expect("bunch");
        let reg = c
            .alloc(node, b, &ObjSpec::with_refs(1, &[0]))
            .expect("alloc");
        c.add_root(node, reg);
        sites.push((node, b, reg));
    }
    let shared = c.create_bunch(NodeId(0)).expect("bunch");
    let migrate: Vec<Addr> = (0..3)
        .map(|_| {
            let o = c
                .alloc(NodeId(0), shared, &ObjSpec::with_refs(2, &[0]))
                .expect("alloc");
            c.add_root(NodeId(0), o);
            o
        })
        .collect();
    c.map_bunch(NodeId(1), shared, NodeId(0)).expect("map");
    c.map_bunch(NodeId(2), shared, NodeId(0)).expect("map");

    let mut round = 0;
    while c.net.now() < 1400 {
        churn::chaos_round(&mut c, &sites, &migrate, round, seed).expect("round");
        c.run_bgc(NodeId(0), shared).expect("bgc");
        round += 1;
    }
    c.settle(3_000).expect("settle");

    let interesting = [
        StatKind::RetryResends,
        StatKind::DuplicateDeliveries,
        StatKind::PartitionsHealed,
        StatKind::NodeRestarts,
        StatKind::RecoveryLatencyTicks,
        StatKind::ObjectsReclaimed,
    ];
    let totals = interesting
        .iter()
        .map(|&k| (k, (0..3).map(|i| c.stats[i].get(k)).sum()))
        .collect();
    (c.net.fault_stats(), totals)
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0BAD_5EED);

    // Declarative validation: impossible plans are typed errors, not panics.
    let bad = NetworkConfig::lossless(1).try_with_drop(MsgClass::Dsm, 0.5);
    println!("dropping DSM traffic   -> {}", bad.unwrap_err());
    let bad = NetworkConfig::lossless(1).try_with_drop(MsgClass::StubTable, 1.5);
    println!("probability 1.5        -> {}", bad.unwrap_err());
    let bad = FaultPlan::none()
        .all_links(LinkFault::dropping(2.0))
        .validate();
    println!("link drop rate 2.0     -> {}", bad.unwrap_err());
    let bad = FaultPlan::none()
        .partition(vec![], vec![NodeId(1)], 0, 10)
        .validate();
    println!("empty partition side   -> {}\n", bad.unwrap_err());

    let (fs1, stats1) = run(seed);
    let (fs2, stats2) = run(seed);
    let (fs3, stats3) = run(seed ^ 0xFFFF);

    println!("chaos run, seed {seed:#x}:");
    println!(
        "  link drops {}  duplicates {}  partition drop/held {}/{}  \
         healed {}  crash drop/held {}/{}  restarts {}",
        fs1.link_dropped,
        fs1.duplicates_injected,
        fs1.partition_dropped,
        fs1.partition_held,
        fs1.partitions_healed,
        fs1.crash_dropped,
        fs1.crash_held,
        fs1.restarts,
    );
    for (k, v) in &stats1 {
        println!("  {k:?}: {v}");
    }
    assert_eq!(
        (&fs1, &stats1),
        (&fs2, &stats2),
        "same seed must replay bit-exactly"
    );
    println!("\nsame seed re-run: identical counters (bit-exact replay)");
    assert_ne!(
        (&fs1, &stats1),
        (&fs3, &stats3),
        "different seed must diverge"
    );
    println!("seed {:#x}: diverges, as it should", seed ^ 0xFFFF);
}
