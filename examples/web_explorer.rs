//! A WWW-like exploratory tool — the paper's "exploratory tools similar to
//! the World-Wide-Web" workload (Section 1).
//!
//! A content node hosts a bushy page graph in one bunch, plus per-topic
//! index bunches that cross-reference it (inter-bunch SSPs). Crawler nodes
//! map replicas and browse with read tokens. Pruning a topic index creates
//! an inter-bunch cycle of dead pages that per-bunch collection can never
//! reclaim — the group collector gets it (Section 7).
//!
//! Run with: `cargo run --example web_explorer`

use bmx_repro::prelude::*;
use bmx_repro::workloads::{cycles, web};

fn main() -> Result<()> {
    let mut cluster = Cluster::new(ClusterConfig::with_nodes(2));
    let (host, crawler) = (NodeId(0), NodeId(1));

    // The host builds a 60-page web in its content bunch.
    let content = cluster.create_bunch(host)?;
    let pages = web::build_web(&mut cluster, host, content, 60, 0xC0FFEE)?;
    cluster.add_root(host, pages[0]);
    println!(
        "web built: {} pages reachable",
        web::reachable_pages(&cluster, host, pages[0])?
    );

    // A topic index in its own bunch points at a few pages (inter-bunch
    // references create stub-scion pairs automatically via the barrier).
    let index = cluster.create_bunch(host)?;
    let topic = cluster.alloc(host, index, &ObjSpec::with_refs(3, &[0, 1, 2]))?;
    for (slot, &p) in pages.iter().step_by(20).take(3).enumerate() {
        cluster.write_ref(host, topic, slot as u64, p)?;
    }
    cluster.add_root(host, topic);
    let stubs = cluster
        .gc
        .node(host)
        .bunch(index)
        .unwrap()
        .stub_table
        .inter()
        .len();
    println!("topic index created {stubs} inter-bunch SSPs");

    // The crawler maps the content bunch and browses with read tokens.
    cluster.map_bunch(crawler, content, host)?;
    cluster.add_root(crawler, pages[0]);
    let mut visited = 0;
    let mut frontier = vec![pages[0]];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(p) = frontier.pop() {
        if p.is_null() || !seen.insert(p) {
            continue;
        }
        cluster.acquire_read(crawler, p)?;
        for f in 0..web::MAX_LINKS {
            frontier.push(cluster.read_ref(crawler, p, f)?);
        }
        cluster.release(crawler, p)?;
        visited += 1;
    }
    println!("crawler visited {visited} pages under read tokens");

    // Dead inter-bunch cycles: a ring of "stale mirror" bunches nobody
    // references. Per-bunch collection keeps it alive forever...
    let (ring_bunches, ring_objs) = cycles::build_inter_bunch_ring(&mut cluster, host, 5)?;
    let mut per_bunch_reclaimed = 0;
    for &b in &ring_bunches {
        per_bunch_reclaimed += cluster.run_bgc(host, b)?.reclaimed;
    }
    println!(
        "per-bunch BGC rounds reclaimed {per_bunch_reclaimed} of the {}-object dead ring",
        ring_objs.len()
    );
    assert_eq!(per_bunch_reclaimed, 0);

    // ...while the group collector (locality heuristic: everything mapped
    // at the host) reclaims the ring and keeps all live pages.
    let before = web::reachable_pages(&cluster, host, pages[0])?;
    let s = cluster.run_ggc(host)?;
    println!(
        "GGC at the host: reclaimed {} objects (the dead ring)",
        s.reclaimed
    );
    assert_eq!(s.reclaimed, ring_objs.len() as u64);
    let after = web::reachable_pages(&cluster, host, pages[0])?;
    assert_eq!(before, after, "live pages survive the group collection");

    // The crawler's replica is untouched and its tokens intact.
    cluster.assert_gc_acquired_no_tokens();
    println!("ok: {after} pages live, dead cycle gone, crawler undisturbed");
    Ok(())
}
