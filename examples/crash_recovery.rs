//! Crash-recovery demo: kill a node with total amnesia, recover it through
//! the RVM store and the epoch-based rejoin handshake, verify nothing live
//! was lost.
//!
//! A 3-node cluster replicates a shared bunch; ownership of a working set
//! migrates continuously. Mid-workload, node 2 suffers an amnesia crash —
//! a power failure that loses every piece of volatile state (memory image,
//! directory, DSM token caches, scion/stub tables, retry timers). It comes
//! back with only its last post-BGC checkpoint on disk, replays the RVM
//! redo log, broadcasts a rejoin request, reconciles ownership with the
//! surviving peers under a fresh epoch, and regenerates its scion/stub
//! state from their idempotent reachability reports. The demo prints the
//! recovery pipeline's outcome and proves the victim is a full cluster
//! member again.
//!
//! Run with: `cargo run --example crash_recovery [seed]`

use bmx::audit;
use bmx_repro::prelude::*;

const CRASH_START: u64 = 600;
const CRASH_END: u64 = 800;
const RUN_UNTIL: u64 = 1300;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("numeric seed"))
        .unwrap_or(0xC0FFEE);
    let victim = NodeId(2);
    let dir = std::env::temp_dir().join(format!("bmx-crash-recovery-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The kill: an amnesia crash window for node 2, on an otherwise
    // lossless network so the recovery pipeline is the only thing at work.
    let mut net = NetworkConfig::lossless(1).with_fault(FaultPlan::none().crash_amnesia(
        victim,
        CRASH_START,
        CRASH_END,
    ));
    net.seed = seed;
    let mut c = Cluster::new(ClusterConfig {
        nodes: 3,
        net,
        retry: Some(RetryPolicy::default()),
        persist: Some(PersistConfig {
            dir: dir.clone(),
            truncate_log_bytes: Some(1 << 18),
        }),
        ..Default::default()
    });
    let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));

    // A shared bunch replicated everywhere: an anchor with a payload plus a
    // working set whose ownership keeps moving.
    let shared = c.create_bunch(n0).expect("bunch");
    let anchor = c.alloc(n0, shared, &ObjSpec::data(1)).expect("alloc");
    c.write_data(n0, anchor, 0, 4242).expect("write");
    c.add_root(n0, anchor);
    let working: Vec<Addr> = (0..4)
        .map(|_| {
            let o = c
                .alloc(n0, shared, &ObjSpec::with_refs(2, &[0]))
                .expect("alloc");
            c.add_root(n0, o);
            o
        })
        .collect();
    c.map_bunch(n1, shared, n0).expect("map");
    c.map_bunch(n2, shared, n0).expect("map");

    println!("=== kill -> recover -> verify (seed {seed:#x}) ===\n");
    println!(
        "workload: 3 nodes, shared bunch, ownership migrating; node {} \
         loses all volatile state in ticks [{CRASH_START}, {CRASH_END})\n",
        victim.0
    );

    // Drive the workload straight through the outage. Collections rotate
    // across the up nodes, so the victim checkpoints the shared bunch
    // (post-BGC) before it dies — that checkpoint is what it replays.
    let mut round = 0usize;
    while c.net.now() < RUN_UNTIL {
        let up: Vec<NodeId> = (0..c.nodes())
            .map(NodeId)
            .filter(|&p| !c.net.is_down(p) && !c.in_recovery(p))
            .collect();
        for (i, &obj) in working.iter().enumerate() {
            let site = up[(round + i) % up.len()];
            match c.acquire_write(site, obj) {
                Ok(()) => c.release(site, obj).expect("release"),
                Err(BmxError::WouldBlock { .. }) | Err(BmxError::OwnerUnknown { .. }) => {}
                Err(e) => panic!("migration hop failed: {e}"),
            }
        }
        let collector = up[round % up.len()];
        c.run_bgc(collector, shared).expect("bgc");
        c.step(40).expect("step");
        round += 1;
    }
    c.settle(5_000).expect("settle");

    // The recovery pipeline's own record of what happened.
    let rec = c
        .recovery_log
        .iter()
        .find(|r| r.node == victim)
        .expect("the victim recovered");
    println!("recovery outcome at node {}:", victim.0);
    println!("  rejoin epoch        {}", rec.epoch);
    println!(
        "  rejoin latency      {} ticks (restart {} -> complete {})",
        rec.complete_tick - rec.restart_tick,
        rec.restart_tick,
        rec.complete_tick
    );
    println!("  rvm replay          {} us wall", rec.replay_micros);
    println!("  objects recovered   {}", rec.objects_recovered);
    println!("  orphans re-homed    {}", rec.orphans_adopted);
    println!("  peer reports applied {}", rec.reports_applied);

    // Verify: nothing live was reclaimed, and the victim is a working
    // member again — it can take a write token and its writes are seen.
    let expected_live: Vec<(NodeId, Addr)> = [(n0, anchor)]
        .into_iter()
        .chain(working.iter().map(|&o| (n0, o)))
        .collect();
    audit::assert_no_premature_reclamation(&c, &expected_live);
    c.acquire_write(n2, anchor).expect("acquire at the victim");
    c.write_data(n2, anchor, 0, 4243)
        .expect("write at the victim");
    c.release(n2, anchor).expect("release");
    c.acquire_read(n0, anchor).expect("acquire");
    assert_eq!(c.read_data(n0, anchor, 0).expect("read"), 4243);
    c.release(n0, anchor).expect("release");

    let s = &c.stats[victim.0 as usize];
    println!("\nverification:");
    println!("  premature reclamation   none (full-cluster audit)");
    println!("  victim write-after-rejoin  visible at node 0");
    println!(
        "  counters                amnesia_wipes={} restarts={} recoveries={}",
        s.get(StatKind::AmnesiaWipes),
        s.get(StatKind::NodeRestarts),
        s.get(StatKind::RecoveriesCompleted)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
