//! Reproduction of *Garbage Collection and DSM Consistency* (Paulo Ferreira
//! and Marc Shapiro, OSDI 1994).
//!
//! This facade crate re-exports the whole workspace for convenient use in
//! examples and integration tests:
//!
//! * [`bmx`] — the integrated platform ([`bmx::Cluster`]);
//! * [`gc`] — the paper's collector (bunch GC, stub–scion pairs, scion
//!   cleaner, group GC, from-space reuse);
//! * [`dsm`] — the entry-consistency protocol;
//! * [`addr`] — the single-address-space memory substrate;
//! * [`net`] — the deterministic simulated network;
//! * [`rvm`] — recoverable virtual memory;
//! * [`trace`] — causal event tracing: flight recorder, Chrome-trace
//!   export, trace-backed invariant checking;
//! * [`profile`] — wall-clock span profiler: per-thread bounded rings,
//!   distributed flow stitching, Perfetto export, post-mortem blackbox
//!   source (see DESIGN.md §13);
//! * [`metrics`] — the cluster-wide metrics plane: allocation-free
//!   counters/gauges/histograms, leak watchdogs, Prometheus and JSON
//!   exposition (see DESIGN.md §9);
//! * [`baselines`] — the comparison systems the paper argues against;
//! * [`workloads`] — synthetic object-graph generators.
//!
//! See DESIGN.md for the system inventory and EXPERIMENTS.md for the
//! paper-vs-measured record of every reproduced figure and claim.

pub use bmx;
pub use bmx_addr as addr;
pub use bmx_baselines as baselines;
pub use bmx_common as common;
pub use bmx_dsm as dsm;
pub use bmx_gc as gc;
pub use bmx_metrics as metrics;
pub use bmx_net as net;
pub use bmx_profile as profile;
pub use bmx_rvm as rvm;
pub use bmx_trace as trace;
pub use bmx_workloads as workloads;

/// A convenient prelude for examples and tests.
pub mod prelude {
    pub use bmx::{
        ChaosConfig, Cluster, ClusterConfig, NodeHandle, NodeLiveness, NodeStatus, ObjSpec,
        ParallelCluster, PersistConfig, RecoveryOutcome, RetryPolicy, Shutdown, ShutdownReport,
    };
    pub use bmx_addr::Protection;
    pub use bmx_common::{Addr, BmxError, BunchId, NodeId, Oid, Result, StatKind};
    pub use bmx_dsm::Token;
    pub use bmx_gc::RelocMode;
    pub use bmx_net::{
        FaultPlan, FaultStats, FaultyTransport, LinkFault, MsgClass, NetworkConfig,
        ParallelFaultPlan, ParallelFaultStats, ParallelLinkFault, ParallelPartition,
    };
}
